// Graph ingestion I/O: SNAP-style text edge lists and the versioned
// binary CSR format (.dpkb).
//
// Text format: one "u<whitespace>v" pair per line; lines starting with
// '#' are comments; blank lines, CRLF endings, tabs and runs of spaces
// are all accepted. Node ids in the file may be arbitrary (sparse)
// uint64s — the reader densifies them to 0..n-1 preserving
// first-appearance order, exactly the preprocessing one applies to the
// real SNAP files the paper used. Malformed lines (non-numeric fields,
// ids overflowing uint64, trailing garbage) produce an InvalidArgument
// Status naming the offending line.
//
// The default parser is chunked and thread-pool-parallel: the byte
// range is split into fixed-size chunks snapped forward to newline
// boundaries (a decomposition that depends only on the bytes and the
// chunk size, never the thread count), chunks are tokenized via the
// shared pool, and the per-chunk edge runs are concatenated in chunk
// order before densification — so the resulting Graph is bit-identical
// to ParseEdgeListSerial at any thread count.
//
// Binary format (.dpkb, little-endian), the sidecar cache behind
// ReadEdgeListCached and the out-of-core substrate behind MmapGraph.
// Current version 3 ("aligned sections"):
//
//   bytes  field
//   0..7   magic "DPKBCSR1"
//   8..11  version (uint32, currently 3)
//   12..15 reserved (uint32, 0)
//   16..23 num_nodes (uint64)
//   24..31 adjacency length (uint64, = 2·edges)
//   32..39 FNV-1a 64 checksum of the offsets + adjacency payload
//          (padding excluded) — exactly Graph::ContentFingerprint
//   40..47 source text size in bytes (uint64; 0 = standalone file)
//   48..55 FNV-1a 64 checksum of the source text (uint64; 0 =
//          standalone file). Sidecar caches record the (size, checksum)
//          stamp of the text they were parsed from, and cached loads
//          revalidate it against the current source bytes, so no
//          rewrite — same-size within mtime granularity,
//          mtime-preserving replacement — can serve a stale graph.
//   56..63 reserved (zero padding to the first section boundary)
//   64..   offsets section: (num_nodes+1) × uint32
//   ...    zero padding to the next 64-byte boundary
//   ↑64    adjacency section: len × uint32
//
// Both sections start on 64-byte boundaries, so an mmap of the file
// (page-aligned by definition) yields cache-line-aligned CSR arrays the
// SIMD kernels can consume in place — the property that makes MmapGraph
// a zero-copy load. Version 2 was the same header (56 bytes, version
// field 2) with the two arrays packed immediately after it; readers
// accept both, writers emit 3. Version-1 files fail the version check;
// the sidecar-cache path treats any unreadable version exactly like a
// stale cache (silent reparse + rewrite), so a repo upgraded across a
// version bump never misloads an old cache.
//
// ReadBinaryGraph verifies magic/version/sizes/checksum and the CSR
// invariants (monotone offsets, strictly sorted in-range lists, no
// self-loops) before constructing the Graph, so a truncated or
// corrupted cache degrades to a Status, never an aborted process.

#ifndef DPKRON_GRAPH_GRAPH_IO_H_
#define DPKRON_GRAPH_GRAPH_IO_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/graph/graph.h"
#include "src/graph/graph_view.h"

namespace dpkron {

struct EdgeListParseOptions {
  // Target bytes per parallel chunk (boundaries snap forward to the
  // next newline). The chunk decomposition — and therefore the merged
  // edge order — depends only on this and the input, not on threads.
  size_t chunk_bytes = 1 << 20;

  // Cross-PROCESS sidecar-rebuild coordination (ReadEdgeListCached):
  // a cache miss takes "<path>.dpkb.lock" (O_EXCL) before parsing, so
  // N daemons cold-starting on one dataset do one parse, not N. A
  // loser polls every lock_poll_ms, re-checking the sidecar each wake
  // (the winner's rename makes it servable); a lock older than
  // lock_stale_ms is presumed orphaned (holder crashed between create
  // and unlink) and is broken. Locking is advisory and best-effort —
  // no failure of the lock protocol ever fails a load.
  int64_t lock_poll_ms = 20;
  int64_t lock_stale_ms = 10000;
};

// Reads an undirected graph from a SNAP-style edge list file
// (parallel parse of the whole file's bytes).
Result<Graph> ReadEdgeList(const std::string& path,
                           const EdgeListParseOptions& options = {});

// Parses an edge list from an in-memory buffer (same format), chunked
// over the shared thread pool.
Result<Graph> ParseEdgeList(std::string_view text,
                            const EdgeListParseOptions& options = {});

// Single-pass line-by-line reference parser. Same tokenizer, no
// chunking — the oracle the parallel path must match bit-for-bit.
Result<Graph> ParseEdgeListSerial(std::string_view text);

// Writes `graph` as an edge list (u < v per line) with a comment header.
Status WriteEdgeList(GraphView graph, const std::string& path);

// ------------------------------------------------------ binary (.dpkb)

// Provenance stamp of the source text a sidecar cache was parsed from;
// {0, 0} for standalone .dpkb files (and never matches a real text: the
// FNV-1a checksum of any byte string is non-zero).
struct DpkbSourceStamp {
  uint64_t size = 0;      // source text bytes
  uint64_t checksum = 0;  // FNV-1a 64 of the source text
};

// Serializes the graph's CSR arrays in the .dpkb v3 format above.
// `source` is recorded in the header (sidecar caches pass the text
// file's stamp; standalone writers leave the default {0, 0}).
Status WriteBinaryGraph(GraphView graph, const std::string& path,
                        const DpkbSourceStamp& source = {});

// Loads a .dpkb file (version 2 or 3), validating header, checksum and
// CSR invariants. `source`, when non-null, receives the header's
// recorded source stamp.
Result<Graph> ReadBinaryGraph(const std::string& path,
                              DpkbSourceStamp* source = nullptr);

// ------------------------------------------------- out-of-core (mmap)

// A .dpkb v3 file mapped read-only into the address space: the CSR
// sections are consumed in place (64-byte-aligned by the v3 layout), so
// opening costs O(header) I/O and graphs larger than RAM stream under
// page-cache control instead of being materialized.
//
// Validation contract: Open always verifies magic/version/counts and
// that the file size matches the header exactly — a file truncated
// mid-CSR fails with a clean Status and is never mapped, so kernels
// cannot SIGBUS on the validated range. The payload checksum and CSR
// invariants are verified only with Options::verify_payload (an
// O(N + E) streaming read, still zero-copy); the default trusts the
// checksum recorded at write time, which is what keeps the load
// O(header). Use verify_payload for .dpkb files of untrusted origin.
//
// A version-2 file (packed layout, unmappable in place) degrades to a
// copying load via ReadBinaryGraph — mapped() reports which route
// served the graph. Fingerprint: the header checksum, which equals
// Graph::ContentFingerprint of the same CSR by the format contract, so
// StatCache entries are shared bit-identically with in-RAM backings.
//
// Thread safety: the mapping is immutable; any number of concurrent
// readers may hold views of one MmapGraph. The object must outlive
// every view of it (GraphHandle below carries the ownership).
struct MmapOptions {
  // Recompute the payload checksum and re-check the CSR invariants
  // before serving (full streaming read of the mapping).
  bool verify_payload = false;
  // madvise(MADV_WILLNEED) the whole mapping up front (default hints
  // only the offsets section).
  bool populate = false;
};

class MmapGraph {
 public:
  using Options = MmapOptions;

  static Result<std::shared_ptr<MmapGraph>> Open(const std::string& path,
                                                 const Options& options = {});

  ~MmapGraph();
  MmapGraph(const MmapGraph&) = delete;
  MmapGraph& operator=(const MmapGraph&) = delete;

  // The zero-copy view every kernel consumes. Valid while this object
  // lives.
  GraphView view() const;

  uint32_t NumNodes() const { return view().NumNodes(); }
  uint64_t NumEdges() const { return view().NumEdges(); }
  uint64_t ContentFingerprint() const { return view().ContentFingerprint(); }

  // True when the CSR is served from the mapping; false when a v2 file
  // forced the copying fallback.
  bool mapped() const { return map_ != nullptr; }

  // The header's recorded source-text stamp ({0,0} for standalone
  // files) — what lets a sidecar consumer revalidate freshness without
  // touching the payload.
  const DpkbSourceStamp& source_stamp() const { return stamp_; }

 private:
  MmapGraph() = default;

  void* map_ = nullptr;  // null = v2 copying fallback (fallback_ holds it)
  size_t map_len_ = 0;
  std::span<const uint32_t> offsets_;
  std::span<const Graph::NodeId> adjacency_;
  Graph fallback_;
  DpkbSourceStamp stamp_;
  // Seeded with the header checksum on open, so views never recompute.
  mutable std::atomic<uint64_t> fingerprint_{0};
};

// The owning handle the loading layer hands to scenarios: a graph
// backed EITHER by in-RAM arenas or by an mmap'd .dpkb, behind one
// type. Converts implicitly to GraphView, so `GraphView g = handle;`
// is the whole consumption idiom. Copies share the backing.
class GraphHandle {
 public:
  GraphHandle() = default;
  GraphHandle(Graph graph)  // NOLINT(google-explicit-constructor)
      : ram_(std::make_shared<const Graph>(std::move(graph))) {}
  explicit GraphHandle(std::shared_ptr<const MmapGraph> mapped)
      : mapped_(std::move(mapped)) {}

  GraphView view() const {
    if (ram_ != nullptr) return GraphView(*ram_);
    if (mapped_ != nullptr) return mapped_->view();
    return GraphView();
  }
  operator GraphView() const { return view(); }  // NOLINT

  uint32_t NumNodes() const { return view().NumNodes(); }
  uint64_t NumEdges() const { return view().NumEdges(); }

  // True when the payload is served from a live mapping (a v2 fallback
  // inside MmapGraph reports false — it materialized).
  bool mmap_backed() const { return mapped_ != nullptr && mapped_->mapped(); }

 private:
  std::shared_ptr<const Graph> ram_;
  std::shared_ptr<const MmapGraph> mapped_;
};

// The sidecar cache path for an edge-list file: "<path>.dpkb".
std::string BinaryCachePath(const std::string& path);

// Parse-once cache: reads and checksums the source text, then loads
// "<path>.dpkb" if its recorded source stamp matches the current
// content; otherwise parses the bytes already in hand and (best-effort)
// writes the sidecar for next time. Freshness is content-addressed —
// timestamps play no part — so no rewrite of the source can be served
// stale. `cache_hit`, when non-null, reports which route served the
// graph.
Result<Graph> ReadEdgeListCached(const std::string& path,
                                 bool* cache_hit = nullptr,
                                 const EdgeListParseOptions& options = {});

// The out-of-core analogue of ReadEdgeListCached: serves the edge list
// through its sidecar as an mmap-backed handle. Stamp-checks
// "<path>.dpkb" against the current source bytes and maps it on a hit;
// on a miss (absent, stale, corrupt, or old-version sidecar) parses the
// text, rewrites the sidecar as v3 — under the same cross-process lock
// protocol as the cached loader — and retries the map once. If the
// sidecar cannot be (re)written (read-only dataset dir, ENOSPC), the
// freshly parsed in-RAM graph serves instead: mmap is an execution
// strategy, never a correctness requirement, and both backings hash to
// the same fingerprint.
Result<GraphHandle> ReadEdgeListMapped(
    const std::string& path, const EdgeListParseOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_GRAPH_GRAPH_IO_H_
