#include "src/estimation/kronmom.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "src/common/macros.h"

namespace dpkron {

uint32_t ChooseKroneckerOrder(uint64_t num_nodes) {
  DPKRON_CHECK_GE(num_nodes, 2u);
  uint32_t k = 0;
  uint64_t capacity = 1;
  while (capacity < num_nodes) {
    capacity <<= 1;
    ++k;
  }
  return k;
}

KronMomResult FitKronMomToFeatures(const GraphFeatures& observed, uint32_t k,
                                   const KronMomOptions& options) {
  DPKRON_CHECK_GE(k, 1u);
  DPKRON_CHECK_GE(options.grid_points, 2u);
  DPKRON_CHECK_GE(options.num_starts, 1u);

  auto objective = [&](const std::vector<double>& x) {
    return MomentObjective(Initiator2{x[0], x[1], x[2]}, k, observed,
                           options.objective);
  };

  // Rank coarse-lattice candidates; the lattice spans the closed box.
  struct Candidate {
    Initiator2 theta;
    double value;
  };
  std::vector<Candidate> candidates;
  const uint32_t g = options.grid_points;
  candidates.reserve(static_cast<size_t>(g) * g * g);
  for (uint32_t ia = 0; ia < g; ++ia) {
    for (uint32_t ib = 0; ib < g; ++ib) {
      for (uint32_t ic = 0; ic < g; ++ic) {
        const Initiator2 theta{double(ia) / (g - 1), double(ib) / (g - 1),
                               double(ic) / (g - 1)};
        candidates.push_back(
            {theta, MomentObjective(theta, k, observed, options.objective)});
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) {
              return x.value < y.value;
            });

  KronMomResult best;
  best.k = k;
  best.objective = std::numeric_limits<double>::infinity();
  const uint32_t starts =
      std::min<uint32_t>(options.num_starts,
                         static_cast<uint32_t>(candidates.size()));
  for (uint32_t s = 0; s < starts; ++s) {
    const Initiator2& start = candidates[s].theta;
    NelderMeadResult run = NelderMead(
        objective, {start.a, start.b, start.c}, options.solver);
    if (run.value < best.objective) {
      best.objective = run.value;
      best.theta = Initiator2{run.point[0], run.point[1], run.point[2]}
                       .Clamped()
                       .Canonical();
      best.converged = run.converged;
    }
  }
  return best;
}

KronMomResult FitKronMom(const Graph& graph, const KronMomOptions& options) {
  const GraphFeatures observed = ComputeFeatures(graph);
  const uint32_t k = ChooseKroneckerOrder(graph.NumNodes());
  return FitKronMomToFeatures(observed, k, options);
}

}  // namespace dpkron
