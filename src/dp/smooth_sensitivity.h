// Smooth sensitivity of the triangle count (Nissim, Raskhodnikova & Smith,
// STOC'07) — steps 4–5 of Algorithm 1.
//
// For a node pair (i, j) let
//   a_ij = number of common neighbors of i and j,
//   b_ij = number of nodes adjacent to exactly one of i, j (excl. i, j).
// Flipping edge {i,j} changes ∆ by a_ij, so LS_∆(G) = max_ij a_ij. With s
// edge modifications an adversary can raise a_ij to
//   c_ij(s) = min( a_ij + ⌊(s + min(s, b_ij)) / 2⌋ , n − 2 ),
// giving the local sensitivity at distance s, LS^(s)(G) = max_ij c_ij(s),
// and the β-smooth sensitivity SS_β(G) = max_{s≥0} e^{−βs} · LS^(s)(G).
//
// c_ij(s) is non-decreasing in both a_ij and b_ij, so the max over pairs
// is attained on the Pareto frontier of {(a_ij, b_ij)}. The profile is
// computed EXACTLY (this matters: an inexact upper bound is easy to
// produce but can silently lose the β-smoothness property the privacy
// proof needs). Pairs fall into three classes:
//   * distance ≤ 2 with a common neighbor — enumerated exactly;
//   * adjacent — covered exactly by the dominated-or-exact candidate
//     (0, d_u + d_v − 2) per edge;
//   * distance > 2 — a = 0 and b = d_i + d_j exactly, so only the
//     maximum degree sum over far pairs matters; found exactly by
//     best-first enumeration of degree-sorted pairs. If that enumeration
//     exceeds its budget (pathological dense-core graphs) we fall back to
//     the conservative d(1)+d(2) bound and say so in `exact()`.

#ifndef DPKRON_DP_SMOOTH_SENSITIVITY_H_
#define DPKRON_DP_SMOOTH_SENSITIVITY_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph_view.h"

namespace dpkron {

// The per-distance local-sensitivity profile of ∆ at a fixed graph.
class TriangleSensitivityProfile {
 public:
  // Computes the profile of `graph` (O(Σ_w deg(w)²) work, chunked
  // across the thread pool with one stamped-counter buffer per worker —
  // O(threads·N) memory — and a chunk-ordered candidate merge, so the
  // profile is identical at any thread count).
  explicit TriangleSensitivityProfile(GraphView graph);

  // Reassembles a profile from its serialized parts — the decode path of
  // the disk StatCache tier. `frontier` must be bytes a prior profile's
  // frontier() exposed; nothing is recomputed or validated here.
  TriangleSensitivityProfile(
      uint32_t num_nodes, bool exact,
      std::vector<std::pair<uint64_t, uint64_t>> frontier)
      : num_nodes_(num_nodes), exact_(exact), frontier_(std::move(frontier)) {}

  uint32_t num_nodes() const { return num_nodes_; }

  // False if the far-pair search hit its budget and a conservative (still
  // valid upper-bound, but possibly non-smooth) candidate was used.
  bool exact() const { return exact_; }

  // LS^(s)(G).
  uint64_t LocalSensitivityAtDistance(uint64_t s) const;

  // LS_∆(G) = LS^(0).
  uint64_t LocalSensitivity() const { return LocalSensitivityAtDistance(0); }

  // SS_{β,∆}(G). Requires beta > 0.
  double SmoothSensitivity(double beta) const;

  // The Pareto-maximal (a, b) candidates (exposed for tests).
  const std::vector<std::pair<uint64_t, uint64_t>>& frontier() const {
    return frontier_;
  }

 private:
  uint32_t num_nodes_;
  bool exact_ = true;
  std::vector<std::pair<uint64_t, uint64_t>> frontier_;  // (a, b), a desc
};

// StatCache byte-budget accounting (see ApproxCacheBytes in
// common/stat_cache.h): the frontier dominates the footprint.
inline size_t ApproxCacheBytes(const TriangleSensitivityProfile& profile) {
  return sizeof(profile) +
         profile.frontier().capacity() * sizeof(std::pair<uint64_t, uint64_t>);
}

// The profile of `graph`, served through the process-wide StatCache
// when it is enabled (keyed by the graph's content fingerprint — the
// profile is a deterministic pure function of the graph, so an ε sweep
// builds it once, not once per ε). With the cache disabled this is a
// plain computation.
std::shared_ptr<const TriangleSensitivityProfile>
CachedTriangleSensitivityProfile(GraphView graph);

// Convenience wrapper: SS_{β,∆}(graph).
double SmoothSensitivityTriangles(GraphView graph, double beta);

struct PrivateTriangleResult {
  double value = 0.0;               // ∆̃
  double exact = 0.0;               // ∆ (kept private by callers!)
  double smooth_sensitivity = 0.0;  // SS_{β,∆}(G)
  double beta = 0.0;
  // TriangleSensitivityProfile::exact() of the profile behind SS: false
  // means the far-pair search fell back to the conservative bound.
  // Plumbed up to the scenario/sweep JSON so the fallback is never
  // silent (the bound is still a valid upper bound, but possibly
  // non-smooth — a run report must say so).
  bool exact_sensitivity = true;
};

// (ε, δ)-differentially private triangle count via Theorem 4.8:
//   ∆̃ = ∆ + (2·SS_β/ε)·Lap(1),  β = ε / (2 ln(2/δ)).
// Requires epsilon > 0 and delta ∈ (0, 1).
PrivateTriangleResult PrivateTriangleCount(GraphView graph, double epsilon,
                                           double delta, Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_DP_SMOOTH_SENSITIVITY_H_
