// Connected components and largest-component extraction.

#ifndef DPKRON_GRAPH_COMPONENTS_H_
#define DPKRON_GRAPH_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

struct ComponentInfo {
  // Component id of each node (ids are 0..num_components-1, assigned in
  // order of smallest contained node).
  std::vector<uint32_t> component_of;
  // Node count per component id.
  std::vector<uint32_t> sizes;

  uint32_t num_components() const {
    return static_cast<uint32_t>(sizes.size());
  }
};

ComponentInfo ConnectedComponents(GraphView graph);

// The induced subgraph on the largest connected component, with nodes
// relabelled 0..n'-1 (order preserved). Returns the graph plus the mapping
// new-id -> old-id.
struct ExtractedComponent {
  Graph graph;
  std::vector<Graph::NodeId> original_id;
};
ExtractedComponent LargestComponent(GraphView graph);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_COMPONENTS_H_
