#include "src/skg/moments.h"

#include <cmath>
#include <string>
#include <tuple>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/estimation/features.h"
#include "src/graph/graph.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

// ---------------------------------------------------------------------------
// Closed form (Eq. 1) vs brute-force summation over the dense Kronecker
// power — a direct check of every term in the formulas.
// ---------------------------------------------------------------------------

using ThetaK = std::tuple<double, double, double, uint32_t>;

class MomentsBruteForceTest : public ::testing::TestWithParam<ThetaK> {};

TEST_P(MomentsBruteForceTest, ClosedFormMatchesBruteForce) {
  const auto [a, b, c, k] = GetParam();
  const Initiator2 theta{a, b, c};
  const SkgMoments closed = ExpectedMoments(theta, k);
  const SkgMoments brute = ExpectedMomentsBruteForce(theta, k);
  const double tol = 1e-9;
  EXPECT_NEAR(closed.edges, brute.edges, tol * (1 + brute.edges));
  EXPECT_NEAR(closed.hairpins, brute.hairpins, tol * (1 + brute.hairpins));
  EXPECT_NEAR(closed.triangles, brute.triangles, tol * (1 + brute.triangles));
  EXPECT_NEAR(closed.tripins, brute.tripins, tol * (1 + brute.tripins));
}

INSTANTIATE_TEST_SUITE_P(
    ThetaSweep, MomentsBruteForceTest,
    ::testing::Values(
        ThetaK{0.99, 0.45, 0.25, 1}, ThetaK{0.99, 0.45, 0.25, 2},
        ThetaK{0.99, 0.45, 0.25, 3}, ThetaK{0.99, 0.45, 0.25, 4},
        ThetaK{0.99, 0.45, 0.25, 5}, ThetaK{1.0, 0.5, 0.0, 4},
        ThetaK{1.0, 1.0, 1.0, 3}, ThetaK{0.0, 0.0, 0.0, 3},
        ThetaK{0.5, 0.5, 0.5, 4}, ThetaK{0.7, 0.1, 0.6, 5},
        ThetaK{1.0, 0.63, 0.0, 6}, ThetaK{0.9, 0.0, 0.2, 4},
        ThetaK{0.0, 1.0, 0.0, 4}, ThetaK{0.3, 0.8, 0.9, 5}));

// ---------------------------------------------------------------------------
// Edge cases with hand-computable values.
// ---------------------------------------------------------------------------

TEST(MomentsTest, AllOnesInitiatorGivesCompleteGraphCounts) {
  // Θ = all ones → G = K_n deterministically (n = 2^k).
  const Initiator2 theta{1.0, 1.0, 1.0};
  for (uint32_t k : {1u, 2u, 3u, 4u}) {
    const double n = std::pow(2.0, k);
    const SkgMoments m = ExpectedMoments(theta, k);
    EXPECT_NEAR(m.edges, n * (n - 1) / 2, 1e-9);
    EXPECT_NEAR(m.hairpins, n * (n - 1) * (n - 2) / 2, 1e-6);
    EXPECT_NEAR(m.triangles, n * (n - 1) * (n - 2) / 6, 1e-6);
    EXPECT_NEAR(m.tripins, n * (n - 1) * (n - 2) * (n - 3) / 6, 1e-6);
  }
}

TEST(MomentsTest, ZeroInitiatorGivesZeroCounts) {
  const SkgMoments m = ExpectedMoments({0.0, 0.0, 0.0}, 5);
  EXPECT_DOUBLE_EQ(m.edges, 0.0);
  EXPECT_DOUBLE_EQ(m.hairpins, 0.0);
  EXPECT_DOUBLE_EQ(m.triangles, 0.0);
  EXPECT_DOUBLE_EQ(m.tripins, 0.0);
}

TEST(MomentsTest, DiagonalOnlyInitiatorHasNoOffDiagonalEdges) {
  // b = 0 and a,c < 1: at k=1, only the (0,0)/(1,1) self-pairs carry
  // probability, which the undirected convention discards — E[E] counts
  // only u≠v. At k=1: E = ½((a+c)^1 − (a+c)^1)... actually for any k,
  // with b=0 off-diagonal pairs u≠v keep probability iff digits differ
  // somewhere -> P_uv = 0. So all expectations vanish except... E should
  // be 0.
  const SkgMoments m = ExpectedMoments({0.9, 0.0, 0.4}, 4);
  EXPECT_NEAR(m.edges, 0.0, 1e-12);
  EXPECT_NEAR(m.triangles, 0.0, 1e-12);
}

TEST(MomentsTest, MonotoneInEachParameter) {
  // Raising any initiator entry cannot decrease any expected count.
  const uint32_t k = 6;
  const Initiator2 base{0.7, 0.4, 0.2};
  const SkgMoments m0 = ExpectedMoments(base, k);
  for (int axis = 0; axis < 3; ++axis) {
    Initiator2 up = base;
    (axis == 0 ? up.a : axis == 1 ? up.b : up.c) += 0.05;
    const SkgMoments m1 = ExpectedMoments(up, k);
    EXPECT_GE(m1.edges, m0.edges - 1e-12);
    EXPECT_GE(m1.hairpins, m0.hairpins - 1e-12);
    EXPECT_GE(m1.triangles, m0.triangles - 1e-12);
    EXPECT_GE(m1.tripins, m0.tripins - 1e-12);
  }
}

TEST(MomentsTest, PaperSyntheticParametersScale) {
  // Θ = [.99 .45; .45 .25], k = 14: edge expectation should land in the
  // ballpark the paper's synthetic graph exhibits (~10^5 edges, 2^14
  // nodes). Regression guard around the exact formula value.
  const SkgMoments m = ExpectedMoments({0.99, 0.45, 0.25}, 14);
  EXPECT_GT(m.edges, 1e4);
  EXPECT_LT(m.edges, 1e5);
  EXPECT_GT(m.hairpins, m.edges);      // wedges exceed edges at this density
  EXPECT_GT(m.tripins, m.triangles);   // 3-stars dominate triangles
}

// ---------------------------------------------------------------------------
// Monte-Carlo: the exact sampler's empirical means must match Eq. (1).
// This simultaneously validates the sampler's pair convention and every
// moment formula at realistic parameters.
// ---------------------------------------------------------------------------

class MomentsMonteCarloTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(MomentsMonteCarloTest, SamplerMeansMatchClosedForm) {
  const auto [a, b, c] = GetParam();
  const Initiator2 theta{a, b, c};
  const uint32_t k = 6;  // 64 nodes
  const uint32_t runs = 400;
  Rng rng(0xC0FFEE ^ uint64_t(a * 1000) ^ uint64_t(b * 100000));

  double edges = 0.0, hairpins = 0.0, triangles = 0.0, tripins = 0.0;
  for (uint32_t r = 0; r < runs; ++r) {
    const Graph g = SampleSkg(theta, k, rng);
    const GraphFeatures f = ComputeFeatures(g);
    edges += f.edges;
    hairpins += f.hairpins;
    triangles += f.triangles;
    tripins += f.tripins;
  }
  edges /= runs;
  hairpins /= runs;
  triangles /= runs;
  tripins /= runs;

  const SkgMoments m = ExpectedMoments(theta, k);
  // 5-sigma-ish bands: Monte-Carlo SD of these counts at k=6 is modest;
  // use relative tolerances wide enough to be deterministic-safe.
  EXPECT_NEAR(edges, m.edges, 0.05 * m.edges + 2.0);
  EXPECT_NEAR(hairpins, m.hairpins, 0.10 * m.hairpins + 10.0);
  EXPECT_NEAR(triangles, m.triangles, 0.15 * m.triangles + 5.0);
  EXPECT_NEAR(tripins, m.tripins, 0.15 * m.tripins + 20.0);
}

INSTANTIATE_TEST_SUITE_P(
    ThetaSweep, MomentsMonteCarloTest,
    ::testing::Values(std::tuple{0.99, 0.45, 0.25},
                      std::tuple{0.9, 0.6, 0.1},
                      std::tuple{1.0, 0.63, 0.0},
                      std::tuple{0.8, 0.5, 0.5}));

}  // namespace
}  // namespace dpkron
