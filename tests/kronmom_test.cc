#include "src/estimation/kronmom.h"

#include <tuple>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/skg/moments.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

TEST(ChooseKroneckerOrderTest, PowersAndBetween) {
  EXPECT_EQ(ChooseKroneckerOrder(2), 1u);
  EXPECT_EQ(ChooseKroneckerOrder(3), 2u);
  EXPECT_EQ(ChooseKroneckerOrder(4), 2u);
  EXPECT_EQ(ChooseKroneckerOrder(5), 3u);
  EXPECT_EQ(ChooseKroneckerOrder(5242), 13u);
  EXPECT_EQ(ChooseKroneckerOrder(9877), 14u);
  EXPECT_EQ(ChooseKroneckerOrder(16384), 14u);
}

// Noiseless identifiability: fitting against the model's own expected
// features must recover the generating parameters.
class KronMomRecoveryTest
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(KronMomRecoveryTest, RecoversThetaFromExactMoments) {
  const auto [a, b, c] = GetParam();
  const Initiator2 truth = Initiator2{a, b, c}.Canonical();
  const uint32_t k = 12;
  const GraphFeatures observed = FromMoments(ExpectedMoments(truth, k));
  const KronMomResult fit = FitKronMomToFeatures(observed, k);
  EXPECT_LT(fit.objective, 1e-8);
  EXPECT_NEAR(fit.theta.a, truth.a, 0.02);
  EXPECT_NEAR(fit.theta.b, truth.b, 0.02);
  EXPECT_NEAR(fit.theta.c, truth.c, 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    ThetaSweep, KronMomRecoveryTest,
    ::testing::Values(std::tuple{0.99, 0.45, 0.25},
                      std::tuple{0.9, 0.6, 0.1},
                      std::tuple{0.8, 0.5, 0.4},
                      std::tuple{1.0, 0.6, 0.0},
                      std::tuple{0.7, 0.3, 0.6},   // canonicalizes
                      std::tuple{0.95, 0.2, 0.55}));

TEST(KronMomTest, FitsSampledSyntheticGraph) {
  const Initiator2 truth{0.99, 0.45, 0.25};
  const uint32_t k = 12;
  Rng rng(2024);
  const Graph g = SampleSkg(truth, k, rng);
  const KronMomResult fit = FitKronMom(g);
  EXPECT_EQ(fit.k, k);
  // Sampling noise at k=12 keeps estimates within a few hundredths
  // (compare Table 1's synthetic row: KronMom (0.9894, 0.5396, 0.2388)
  // against truth (0.99, 0.45, 0.25)).
  EXPECT_NEAR(fit.theta.a, truth.a, 0.08);
  EXPECT_NEAR(fit.theta.b, truth.b, 0.12);
  EXPECT_NEAR(fit.theta.c, truth.c, 0.12);
}

TEST(KronMomTest, CanonicalOutput) {
  const GraphFeatures observed =
      FromMoments(ExpectedMoments({0.9, 0.4, 0.3}, 10));
  const KronMomResult fit = FitKronMomToFeatures(observed, 10);
  EXPECT_GE(fit.theta.a, fit.theta.c);
  EXPECT_TRUE(fit.theta.IsValid());
}

TEST(KronMomTest, ObjectiveOptionsPropagate) {
  const uint32_t k = 10;
  const GraphFeatures observed =
      FromMoments(ExpectedMoments({0.9, 0.5, 0.2}, k));
  KronMomOptions options;
  options.objective.dist = DistKind::kAbsolute;
  options.objective.norm = NormKind::kE;
  const KronMomResult fit = FitKronMomToFeatures(observed, k, options);
  EXPECT_LT(fit.objective, 1e-5);
  EXPECT_NEAR(fit.theta.a, 0.9, 0.03);
}

TEST(KronMomTest, DegenerateZeroFeatures) {
  GraphFeatures observed;  // all zeros
  const KronMomResult fit = FitKronMomToFeatures(observed, 8);
  // Must terminate and return a valid (low-density) initiator.
  EXPECT_TRUE(fit.theta.IsValid());
  EXPECT_LT(ExpectedEdges(fit.theta, 8), 10.0);
}

}  // namespace
}  // namespace dpkron
