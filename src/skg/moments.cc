#include "src/skg/moments.h"

#include "src/common/macros.h"
#include "src/skg/kronecker.h"

namespace dpkron {

double ExpectedEdges(const Initiator2& theta, uint32_t k) {
  const double a = theta.a, b = theta.b, c = theta.c;
  return 0.5 * (PowInt(a + 2 * b + c, k) - PowInt(a + c, k));
}

double ExpectedHairpins(const Initiator2& theta, uint32_t k) {
  const double a = theta.a, b = theta.b, c = theta.c;
  const double s1 = (a + b) * (a + b) + (b + c) * (b + c);
  const double s2 = a * (a + b) + c * (c + b);
  const double s3 = a * a + 2 * b * b + c * c;
  const double s4 = a * a + c * c;
  return 0.5 * (PowInt(s1, k) - 2 * PowInt(s2, k) - PowInt(s3, k) +
                2 * PowInt(s4, k));
}

double ExpectedTriangles(const Initiator2& theta, uint32_t k) {
  const double a = theta.a, b = theta.b, c = theta.c;
  const double s1 = a * a * a + 3 * b * b * (a + c) + c * c * c;
  const double s2 = a * (a * a + b * b) + c * (b * b + c * c);
  const double s3 = a * a * a + c * c * c;
  return (PowInt(s1, k) - 3 * PowInt(s2, k) + 2 * PowInt(s3, k)) / 6.0;
}

// Derivation (the printed Eq. (1) tripin formula is garbled in the
// paper's text; this is re-derived from scratch and verified against
// brute-force summation over the dense Kronecker power in moments_test):
// T = Σ_c e3({P_cu : u ≠ c}) and e3 = (p1³ − 3p1p2 + 2p3)/6 with power
// sums p_j = R_j(c) − P_cc^j, where R_j(c) = Σ_u P_cu^j factorizes per
// digit. Expanding and pushing Σ_c through each product gives
//   6·E[T] = S1 − 3·S2 − 3·S3 + 6·S4 + 3·S5 + 2·S6 − 6·S7.
double ExpectedTripins(const Initiator2& theta, uint32_t k) {
  const double a = theta.a, b = theta.b, c = theta.c;
  const double ab = a + b, bc = b + c;
  const double a2b2 = a * a + b * b, b2c2 = b * b + c * c;
  const double s1 = ab * ab * ab + bc * bc * bc;           // Σ R³
  const double s2 = a * ab * ab + c * bc * bc;             // Σ R²·d
  const double s3 = ab * a2b2 + bc * b2c2;                 // Σ R·R2
  const double s4 = a * a * ab + c * c * bc;               // Σ R·d²
  const double s5 = a * a2b2 + c * b2c2;                   // Σ R2·d
  const double s6 = a * a * a + 2 * b * b * b + c * c * c; // Σ R3
  const double s7 = a * a * a + c * c * c;                 // Σ d³
  return (PowInt(s1, k) - 3 * PowInt(s2, k) - 3 * PowInt(s3, k) +
          6 * PowInt(s4, k) + 3 * PowInt(s5, k) + 2 * PowInt(s6, k) -
          6 * PowInt(s7, k)) /
         6.0;
}

SkgMoments ExpectedMoments(const Initiator2& theta, uint32_t k) {
  DPKRON_CHECK_MSG(theta.IsValid(), "initiator entries outside [0,1]");
  DPKRON_CHECK_GE(k, 1u);
  SkgMoments m;
  m.edges = ExpectedEdges(theta, k);
  m.hairpins = ExpectedHairpins(theta, k);
  m.triangles = ExpectedTriangles(theta, k);
  m.tripins = ExpectedTripins(theta, k);
  return m;
}

SkgMoments ExpectedMomentsBruteForce(const Initiator2& theta, uint32_t k) {
  const EdgeProbability2 prob(theta, k);
  const uint64_t n = prob.num_nodes();
  DPKRON_CHECK_MSG(n <= 256, "brute-force moments limited to k <= 8");
  SkgMoments m;
  // E = Σ_{u<v} P_uv.
  for (uint64_t u = 0; u < n; ++u) {
    for (uint64_t v = u + 1; v < n; ++v) m.edges += prob(u, v);
  }
  // H = Σ_center Σ_{u<v, u,v≠center} P_cu P_cv;
  // T = Σ_center Σ_{u<v<w distinct} P_cu P_cv P_cw — computed via the
  // elementary symmetric polynomials of {P_cu}.
  for (uint64_t center = 0; center < n; ++center) {
    double e1 = 0.0, e2 = 0.0, e3 = 0.0;  // elementary symmetric sums
    for (uint64_t u = 0; u < n; ++u) {
      if (u == center) continue;
      const double p = prob(center, u);
      e3 += e2 * p;
      e2 += e1 * p;
      e1 += p;
    }
    m.hairpins += e2;
    m.tripins += e3;
  }
  // ∆ = Σ_{u<v<w} P_uv P_vw P_uw.
  for (uint64_t u = 0; u < n; ++u) {
    for (uint64_t v = u + 1; v < n; ++v) {
      const double puv = prob(u, v);
      if (puv == 0.0) continue;
      for (uint64_t w = v + 1; w < n; ++w) {
        m.triangles += puv * prob(v, w) * prob(u, w);
      }
    }
  }
  return m;
}

}  // namespace dpkron
