#include "src/linalg/spmv.h"

#include <cmath>

#include "src/common/macros.h"

namespace dpkron {

void AdjacencyMatVec(const Graph& graph, const std::vector<double>& x,
                     std::vector<double>* y) {
  DPKRON_CHECK_EQ(x.size(), graph.NumNodes());
  DPKRON_CHECK_EQ(y->size(), graph.NumNodes());
  DPKRON_CHECK(&x != y);
  for (Graph::NodeId u = 0; u < graph.NumNodes(); ++u) {
    double sum = 0.0;
    for (Graph::NodeId v : graph.Neighbors(u)) sum += x[v];
    (*y)[u] = sum;
  }
}

double Norm2(const std::vector<double>& x) {
  return std::sqrt(Dot(x, x));
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  DPKRON_CHECK_EQ(x.size(), y.size());
  double sum = 0.0;
  for (size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

void Axpy(double alpha, const std::vector<double>& x, std::vector<double>* y) {
  DPKRON_CHECK_EQ(x.size(), y->size());
  for (size_t i = 0; i < x.size(); ++i) (*y)[i] += alpha * x[i];
}

void Scale(double alpha, std::vector<double>* x) {
  for (double& value : *x) value *= alpha;
}

}  // namespace dpkron
