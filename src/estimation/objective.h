// The moment-matching objective of Equation (2):
//
//   min_{a,b,c}  Σ_F  Dist(F, E_{a,b,c}(F)) / Norm(F, E_{a,b,c}(F))
//
// with Dist ∈ {squared, absolute} and Norm ∈ {F, F², E, E²} (F = observed
// count, E = model-expected count). Gleich & Owen report DistSq + NormF²
// as the robust combination; that is the default everywhere in dpkron.

#ifndef DPKRON_ESTIMATION_OBJECTIVE_H_
#define DPKRON_ESTIMATION_OBJECTIVE_H_

#include <cstdint>
#include <string>

#include "src/estimation/features.h"
#include "src/skg/initiator.h"

namespace dpkron {

enum class DistKind {
  kSquared,   // (x − y)²
  kAbsolute,  // |x − y|
};

enum class NormKind {
  kF,   // observed count
  kF2,  // observed count squared
  kE,   // expected count
  kE2,  // expected count squared
};

const char* DistKindName(DistKind dist);
const char* NormKindName(NormKind norm);

struct ObjectiveOptions {
  DistKind dist = DistKind::kSquared;
  NormKind norm = NormKind::kF2;
  // Feature subset. Gleich & Owen fit on subsets of {E, H, ∆, T};
  // all four is the default and what Table 1 uses.
  bool use_edges = true;
  bool use_hairpins = true;
  bool use_triangles = true;
  bool use_tripins = true;
};

// Evaluates the Eq. (2) objective for candidate Θ = (a, b, c) at Kronecker
// order k against observed features. Entries of theta may lie outside
// [0,1] during optimization: they are clamped for the moment evaluation
// and a quadratic out-of-box penalty is added, which keeps the simplex
// method inside the feasible region without hard walls.
double MomentObjective(const Initiator2& theta, uint32_t k,
                       const GraphFeatures& observed,
                       const ObjectiveOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_ESTIMATION_OBJECTIVE_H_
