// End-to-end integration tests: the full paper pipeline on small-but-real
// workloads — dataset → (KronFit | KronMom | Private) → synthetic sample →
// statistics comparison. These encode the *qualitative* claims of §4.2.

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/core/release.h"
#include "src/datasets/affiliation.h"
#include "src/datasets/preferential_attachment.h"
#include "src/estimation/kronmom.h"
#include "src/graph/clustering.h"
#include "src/graph/hop_plot.h"
#include "src/kronfit/kronfit.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

// Shared scaled-down co-authorship-like workload (keeps runtime modest).
Graph SmallCoauthorship(uint64_t seed) {
  AffiliationOptions options;
  options.num_authors = 1024;
  options.num_papers = 640;
  Rng rng(seed);
  return AffiliationGraph(options, rng);
}

TEST(IntegrationTest, PrivateTracksKronMomOnCoauthorshipLike) {
  const Graph g = SmallCoauthorship(11);
  Rng rng(12);
  const KronMomResult kronmom = FitKronMom(g);
  const auto private_fit = EstimatePrivateSkg(g, 0.2, 0.01, rng);
  ASSERT_TRUE(private_fit.ok());
  // The paper's central empirical claim: private ≈ non-private moments
  // estimate. Small graphs are noisier than the paper's (ε noise is
  // size-independent while counts shrink), so allow a loose band.
  EXPECT_LT(MaxAbsDifference(private_fit.value().theta, kronmom.theta), 0.15);
}

TEST(IntegrationTest, AllThreeEstimatorsProduceSimilarEdgeCounts) {
  const Graph g = SmallCoauthorship(21);
  Rng rng(22);
  const uint32_t k = ChooseKroneckerOrder(g.NumNodes());
  const KronMomResult kronmom = FitKronMom(g);
  KronFitOptions kf_options;
  kf_options.iterations = 30;
  const KronFitResult kronfit = FitKronFit(g, rng, kf_options);
  const auto private_fit = EstimatePrivateSkg(g, 0.5, 0.01, rng);
  ASSERT_TRUE(private_fit.ok());

  const double truth = double(g.NumEdges());
  const double mom_edges = ExpectedEdges(kronmom.theta, k);
  const double fit_edges = ExpectedEdges(kronfit.theta, k);
  const double private_edges = ExpectedEdges(private_fit.value().theta, k);
  EXPECT_NEAR(mom_edges, truth, 0.15 * truth);
  EXPECT_NEAR(private_edges, truth, 0.25 * truth);
  EXPECT_NEAR(fit_edges, truth, 0.60 * truth);  // approximate MLE is coarser
}

TEST(IntegrationTest, SyntheticGraphsFromPrivateEstimateMatchStatistics) {
  // Fit privately, then sample a synthetic graph and compare the paper's
  // panel statistics against the original in shape.
  const Graph original = SmallCoauthorship(31);
  Rng rng(32);
  const auto fit = EstimatePrivateSkg(original, 0.5, 0.01, rng);
  ASSERT_TRUE(fit.ok());
  const Graph synthetic = SampleSyntheticGraph(
      fit.value().theta, fit.value().k, rng, SkgSampleMethod::kExact);

  // Edge counts in the same ballpark.
  EXPECT_NEAR(double(synthetic.NumEdges()), double(original.NumEdges()),
              0.35 * double(original.NumEdges()));

  // Hop plots saturate within a couple of hops of each other.
  const auto hops_original = ExactHopPlot(original);
  const auto hops_synthetic = ExactHopPlot(synthetic);
  EXPECT_NEAR(double(EffectiveDiameter(hops_original)),
              double(EffectiveDiameter(hops_synthetic)), 3.0);
}

TEST(IntegrationTest, SkgUnderfitsCoauthorshipClustering) {
  // §4.2: "the SKG models the clustering coefficient well for AS20 but
  // not for CA-GrQC and CA-HepTh". Union-of-cliques originals have much
  // higher clustering than any fitted SKG realization.
  const Graph original = SmallCoauthorship(41);
  Rng rng(42);
  const KronMomResult fit = FitKronMom(original);
  const Graph synthetic =
      SampleSyntheticGraph(fit.theta, fit.k, rng, SkgSampleMethod::kExact);
  EXPECT_GT(AverageClustering(original),
            5.0 * AverageClustering(synthetic) - 1e-12);
}

TEST(IntegrationTest, AsLikeGraphDrivesCTowardZero) {
  // Table 1 AS20 row: KronMom c = 0.000. Preferential-attachment graphs
  // (core-periphery, no homophilous block) push c to the boundary.
  PreferentialAttachmentOptions options;
  options.num_nodes = 2048;
  options.edges_per_node = 4;
  Rng rng(51);
  const Graph g = PreferentialAttachmentGraph(options, rng);
  const KronMomResult fit = FitKronMom(g);
  EXPECT_LT(fit.theta.c, 0.1);
  EXPECT_GT(fit.theta.a, 0.85);
}

TEST(IntegrationTest, ReleasePipelineUnderSingleBudget) {
  // A custodian fits privately once and publishes; re-running with the
  // same budget object must fail (no double-dipping).
  const Graph g = SmallCoauthorship(61);
  Rng rng(62);
  PrivacyBudget budget(0.2, 0.01);
  const auto first = EstimatePrivateSkg(g, 0.2, 0.01, budget, rng);
  ASSERT_TRUE(first.ok());
  const auto second = EstimatePrivateSkg(g, 0.2, 0.01, budget, rng);
  EXPECT_FALSE(second.ok());
}

}  // namespace
}  // namespace dpkron
