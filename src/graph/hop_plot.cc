#include "src/graph/hop_plot.h"

#include <algorithm>

#include "src/common/macros.h"
#include "src/graph/bfs.h"

namespace dpkron {

std::vector<uint64_t> ExactHopPlot(GraphView graph) {
  // n BFS sweeps, but one logical traversal of the view per call at the
  // pass-plan granularity the fused pipeline accounts in.
  graph.CountPass("exact_hop_plot");
  const uint32_t n = graph.NumNodes();
  std::vector<uint64_t> reached_at;  // reached_at[h] = #pairs at distance h
  BfsScratch scratch(n);
  for (Graph::NodeId source = 0; source < n; ++source) {
    scratch.Run(graph, source);
    for (Graph::NodeId v : scratch.Visited()) {
      const uint32_t h = static_cast<uint32_t>(scratch.Distance(v));
      if (h >= reached_at.size()) reached_at.resize(h + 1, 0);
      ++reached_at[h];
    }
  }
  // Cumulate: N(h) = Σ_{h' ≤ h} reached_at[h'].
  std::vector<uint64_t> hop_plot(reached_at.size());
  uint64_t running = 0;
  for (size_t h = 0; h < reached_at.size(); ++h) {
    running += reached_at[h];
    hop_plot[h] = running;
  }
  return hop_plot;
}

uint32_t EffectiveDiameter(const std::vector<uint64_t>& hop_plot,
                           double fraction) {
  DPKRON_CHECK(!hop_plot.empty());
  DPKRON_CHECK_GT(fraction, 0.0);
  DPKRON_CHECK_LE(fraction, 1.0);
  const double target = fraction * static_cast<double>(hop_plot.back());
  for (uint32_t h = 0; h < hop_plot.size(); ++h) {
    if (static_cast<double>(hop_plot[h]) >= target) return h;
  }
  return static_cast<uint32_t>(hop_plot.size() - 1);
}

}  // namespace dpkron
