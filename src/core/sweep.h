// The batch sweep engine — the evaluation loop the paper implies run as
// one declarative job. conf_edbt_MirW12's experiments release the same
// input graph under many ε values, seeds and estimator routes; a
// SweepSpec names those axes (scenarios × datasets × ε-grid × seeds)
// and RunSweep expands them into a run matrix, executes it concurrently
// over the shared thread pool, and aggregates the per-run outputs in
// matrix order into one BENCH_sweeps.json document.
//
// Guarantees:
//   * Determinism / byte-identity. Run (scenario, dataset, ε, seed_j)
//     produces exactly the output a standalone
//     `--scenario=<name> --epsilon=ε --seed=seed_j --dataset=<ref>`
//     invocation produces: each run re-derives its streams from its own
//     seed, runs are independent, and aggregation is by matrix index —
//     never by completion order — so the document is identical at any
//     thread count (tests/sweep_test.cc enforces both).
//   * Amortization. RunSweep enables the process-wide StatCache, so the
//     deterministic per-graph quantities (profiles, KronFit fits,
//     degree sequences, triangle counts, statistics panels) are
//     computed once per distinct key instead of once per run; the
//     cache's hit/miss counters land in the document.
//   * Isolation of failures. A run that fails (degenerate ε, bad
//     dataset, exhausted budget) is recorded in the report with its
//     Status; it never aborts the batch.
//
// Seed axis: seed index 0 is the base seed itself (so a 1-seed sweep is
// exactly the plain scenario run); indices 1.. are drawn from Rng::Split
// streams of an Rng seeded with the base — published by SweepSeeds so a
// standalone run can reproduce any cell of the matrix.

#ifndef DPKRON_CORE_SWEEP_H_
#define DPKRON_CORE_SWEEP_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/common/stat_cache.h"
#include "src/common/status.h"
#include "src/core/scenario.h"

namespace dpkron {

// The declarative run matrix: every combination of the four axes is one
// run. Empty axes collapse to a single "spec default" entry.
struct SweepSpec {
  // Scenario names (must all be registered). Required, non-empty.
  std::vector<std::string> scenarios;
  // Dataset references (GraphSource refs); empty = each scenario's own
  // spec-declared datasets.
  std::vector<std::string> datasets;
  // ε grid; empty = each scenario's default (or base.epsilon) only.
  std::vector<double> epsilons;
  // Seed-axis length (>= 1): seeds are derived per scenario from its
  // effective base seed via SweepSeeds.
  uint32_t seeds = 1;
  // Everything else (smoke, trials, realizations, kronfit iterations,
  // base seed, dataset cache) applies to every run. base.epsilon /
  // base.dataset act as the single-entry axis when the corresponding
  // axis above is empty; base.seed overrides the scenario's default
  // base seed.
  ScenarioOverrides base;

  // ------------------------------------------------- crash-safety knobs
  // When non-empty, every completed cell is journaled here (append-only,
  // checksummed, fsynced per record — see common/journal.h) as soon as
  // it finishes, and the emitted document switches to its STABLE form
  // (wall times zeroed, volatile cache counters omitted) so an
  // interrupted-then-resumed sweep serializes byte-identically to an
  // uninterrupted one.
  std::string checkpoint_path;
  // With `resume`, cells found complete in the checkpoint are not
  // re-executed; their recorded results merge back in matrix order. The
  // checkpoint binds itself to the expanded matrix (a fingerprint in
  // record 0), so resuming under a different spec refuses cleanly.
  // Without `resume`, an existing checkpoint is overwritten.
  bool resume = false;
  // Attempts per cell: a cell whose run fails with the TRANSIENT status
  // (UNAVAILABLE — injectable via FaultInjectionEnv, returned by flaky
  // storage) is retried up to this many times with deterministic
  // exponential backoff. Non-transient failures never retry. >= 1.
  uint32_t max_attempts = 1;

  // ------------------------------------------------- multi-process shards
  // With shards > 1 this process is worker `shard_id` of a fleet of
  // `shards` started against the same spec: it executes only the cells
  // with matrix index ≡ shard_id (mod shards) — a deterministic
  // partition, no claim traffic — and journals them into its own
  // checkpoint (required; use ShardCheckpointPath for the conventional
  // name). Workers share amortization through the StatCache disk tier,
  // not through process memory. MergeSweepShards then combines the
  // per-shard journals into the full-matrix result whose document is
  // byte-identical to a single-process run of the same spec.
  uint32_t shards = 1;
  uint32_t shard_id = 0;
};

// One cell of the executed matrix.
struct SweepRun {
  std::string scenario;
  std::string dataset;  // "" = scenario's own datasets
  double epsilon = 0.0;  // resolved value this run used
  uint64_t seed = 0;
  uint32_t seed_index = 0;
  Status status;  // OK unless the run failed
  // Tables/summaries/budgets; text output suppressed (nullptr sink) —
  // concurrent runs must not interleave on stdout and the JSON document
  // carries every row.
  ScenarioOutput output{"", nullptr};
  // Executions this cell took (1 = first try; >1 only after transient
  // retries). 0 for a cell restored from a checkpoint.
  uint32_t attempts = 1;
  // Non-empty iff the cell was restored from a checkpoint: the exact
  // per-run JSON fragment recorded at completion time, spliced verbatim
  // into the document (`output` is empty for such cells).
  std::string checkpointed_run_json;
  // True iff this cell belongs to another shard of a sharded sweep: not
  // executed, not journaled, not counted as failed. Always false in the
  // merged / single-process result.
  bool shard_skipped = false;
};

struct SweepResult {
  std::vector<SweepRun> runs;  // matrix order: scenario, dataset, ε, seed
  double elapsed_seconds = 0.0;
  size_t failed_runs = 0;
  // The StatCache state the runs executed under (RunSweep always
  // enables it; recorded here because it restores the caller's state
  // before this result is serialized).
  bool cache_enabled = true;
  // Hit/miss DELTAS attributable to this sweep alone (counters
  // snapshotted around the execution), so back-to-back sweeps in one
  // process each report their own amortization, not the cumulative
  // process totals.
  StatCache::Counters cache_total;
  std::vector<std::pair<std::string, StatCache::Counters>> cache_domains;
  // Checkpointing state: `stable_document` selects the stable JSON form
  // (set iff the sweep ran with a checkpoint); `resumed_runs` counts
  // cells served from the checkpoint instead of executed.
  bool stable_document = false;
  size_t resumed_runs = 0;
};

// The seed axis for `base_seed`: index 0 = base_seed, indices 1..count-1
// drawn from independent Rng::Split streams of Rng(base_seed).
std::vector<uint64_t> SweepSeeds(uint64_t base_seed, uint32_t count);

// Expands and executes the matrix. Fails (without running anything) on
// an empty/unknown scenario list or seeds == 0; per-run failures are
// recorded in the result instead.
Result<SweepResult> RunSweep(const SweepSpec& spec);

// The conventional checkpoint-journal path for worker `shard_id` of a
// sharded sweep rooted at `base`: "<base>.shard-<i>". Workers and the
// merge step that derive paths the same way never need to exchange them.
std::string ShardCheckpointPath(const std::string& base, uint32_t shard_id);

// Combines the per-shard checkpoint journals of a sharded sweep into the
// full-matrix result, in matrix order. Every journal must carry this
// spec's matrix fingerprint (foreign journals refuse, exactly like
// --resume) and every cell must be present in at least one journal;
// cells recorded by several shards must agree byte-for-byte (the
// determinism contract). The result is a fully-checkpointed stable
// document: SweepsJson(merged) is byte-identical to a single-process
// checkpointed run of the same spec.
Result<SweepResult> MergeSweepShards(const SweepSpec& spec,
                                     const std::vector<std::string>& shard_paths);

// The BENCH_sweeps.json document: {schema: "dpkron.sweeps.v1", threads,
// stable, cache: {...}, runs: [{scenario, dataset, epsilon, seed,
// seed_index, ok, status, run: {...}}]}.
//
// Stable form (`result.stable_document`, i.e. checkpointed sweeps):
// wall times serialize as 0 and the cache block carries only `enabled` —
// those are properties of one process's execution, not of the run
// matrix, and a resumed sweep must serialize byte-identically to an
// uninterrupted one.
std::string SweepsJson(const SweepResult& result, int threads);

}  // namespace dpkron

#endif  // DPKRON_CORE_SWEEP_H_
