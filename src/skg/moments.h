// Closed-form expected feature counts under the SKG distribution —
// Equation (1) of the paper (derived by Gleich & Owen).
//
// For Θ = [a b; b c] and P = Θ^[k] on 2^k nodes, with the undirected
// convention of §3.2 (one Bernoulli coin per unordered pair {u,v}, u ≠ v,
// with bias P_uv), these give the exact expectations of
//   E  — number of edges,
//   H  — number of hairpins (wedges / 2-stars),
//   ∆  — number of triangles,
//   T  — number of tripins (3-stars).

#ifndef DPKRON_SKG_MOMENTS_H_
#define DPKRON_SKG_MOMENTS_H_

#include <cstdint>

#include "src/skg/initiator.h"

namespace dpkron {

struct SkgMoments {
  double edges = 0.0;      // E[E]
  double hairpins = 0.0;   // E[H]
  double triangles = 0.0;  // E[∆]
  double tripins = 0.0;    // E[T]
};

// Full Eq. (1). Requires theta valid and k ≥ 1.
SkgMoments ExpectedMoments(const Initiator2& theta, uint32_t k);

// Individual formulas (exposed for focused tests).
double ExpectedEdges(const Initiator2& theta, uint32_t k);
double ExpectedHairpins(const Initiator2& theta, uint32_t k);
double ExpectedTriangles(const Initiator2& theta, uint32_t k);
double ExpectedTripins(const Initiator2& theta, uint32_t k);

// Brute-force reference: evaluates the same expectations directly from the
// dense Kronecker power by summing over node pairs/triples. O(4^k) to
// O(8^k) — only for cross-validating Eq. (1) in tests at small k.
SkgMoments ExpectedMomentsBruteForce(const Initiator2& theta, uint32_t k);

}  // namespace dpkron

#endif  // DPKRON_SKG_MOMENTS_H_
