#include "src/dp/private_features.h"

#include "src/common/macros.h"
#include "src/dp/smooth_sensitivity.h"

namespace dpkron {

Result<PrivateFeaturesResult> ComputePrivateFeatures(
    GraphView graph, double epsilon, double delta, PrivacyBudget& budget,
    Rng& rng, const PrivateFeaturesOptions& options) {
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  // Reserve the full charge up front; a partially-run mechanism must not
  // happen after a budget refusal.
  if (Status s = budget.Spend(epsilon / 2, 0.0, "degree_sequence (Hay et al.)");
      !s.ok()) {
    return s;
  }
  if (Status s =
          budget.Spend(epsilon / 2, delta, "triangle_count (NRS smooth)");
      !s.ok()) {
    return s;
  }

  PrivateFeaturesResult result;
  // Steps 1–3: private degree sequence -> Ẽ, H̃, T̃.
  auto noisy_degrees =
      PrivateDegreeSequence(graph, epsilon / 2, rng, options.degrees);
  if (!noisy_degrees.ok()) return noisy_degrees.status();
  result.noisy_degrees = std::move(noisy_degrees).value();
  // Steps 4–5: smooth-sensitivity private triangle count -> ∆̃.
  const PrivateTriangleResult triangles =
      PrivateTriangleCount(graph, epsilon / 2, delta, rng);
  result.smooth_sensitivity = triangles.smooth_sensitivity;
  result.beta = triangles.beta;
  result.exact_sensitivity = triangles.exact_sensitivity;

  result.raw = FeaturesFromDegrees(result.noisy_degrees, triangles.value);
  result.features = ClampFeatures(result.raw, options.feature_floor);
  return result;
}

Result<PrivateFeaturesResult> ComputePrivateFeatures(
    GraphView graph, double epsilon, double delta, Rng& rng,
    const PrivateFeaturesOptions& options) {
  // Validate before provisioning: PrivacyBudget treats invalid totals as
  // a programming error and aborts, but bad (ε, δ) here is a recoverable
  // caller mistake.
  if (epsilon <= 0.0) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (delta <= 0.0 || delta >= 1.0) {
    return Status::InvalidArgument("delta must be in (0, 1)");
  }
  PrivacyBudget budget(epsilon, delta);
  return ComputePrivateFeatures(graph, epsilon, delta, budget, rng, options);
}

}  // namespace dpkron
