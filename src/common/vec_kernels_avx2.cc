// AVX2 translation unit: this file (and the other *_avx2.cc TUs) is the
// only code compiled with -mavx2; see CMakeLists.txt. When the compiler
// lacks the flag the TU still builds, Avx2KernelsCompiled() reports
// false, dispatch never selects kAvx2, and the kernel bodies become
// unreachable aborting stubs.

#include "src/common/vec_kernels.h"

#include "src/common/macros.h"
#include "src/common/simd.h"

#ifdef __AVX2__
#include <immintrin.h>
#endif

namespace dpkron {

bool Avx2KernelsCompiled() {
#ifdef __AVX2__
  return true;
#else
  return false;
#endif
}

#ifdef __AVX2__

// Every public kernel ends with _mm256_zeroupper(): the callers are
// legacy-SSE translation units, and returning with dirty ymm uppers
// gives each of their SSE instructions a false dependency on the stale
// upper halves.

void AddVectorsAvx2(const double* a, const double* b, double* dst,
                    size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(dst + i, _mm256_add_pd(_mm256_loadu_pd(a + i),
                                            _mm256_loadu_pd(b + i)));
  }
  for (; i < n; ++i) dst[i] = a[i] + b[i];
  _mm256_zeroupper();
}

void AxpyAvx2(double alpha, const double* x, double* y, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d prod = _mm256_mul_pd(va, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
  _mm256_zeroupper();
}

void ScaleAvx2(double alpha, double* x, size_t n) {
  const __m256d va = _mm256_set1_pd(alpha);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), va));
  }
  for (; i < n; ++i) x[i] *= alpha;
  _mm256_zeroupper();
}

namespace {

// Shared OR-merge body; public entry points clear the ymm uppers.
inline bool OrMergeImpl(uint64_t* dst, const uint64_t* src, size_t n) {
  __m256i changed = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i merged = _mm256_or_si256(d, s);
    changed = _mm256_or_si256(changed, _mm256_xor_si256(merged, d));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i), merged);
  }
  bool any = !_mm256_testz_si256(changed, changed);
  for (; i < n; ++i) {
    const uint64_t merged = dst[i] | src[i];
    any |= (merged != dst[i]);
    dst[i] = merged;
  }
  return any;
}

}  // namespace

bool OrMergeAvx2(uint64_t* dst, const uint64_t* src, size_t n) {
  const bool any = OrMergeImpl(dst, src, n);
  _mm256_zeroupper();
  return any;
}

bool OrMergeRowAvx2(uint64_t* dst, const uint64_t* masks, size_t trials,
                    const uint32_t* neighbors, size_t degree) {
  bool any = false;
  for (size_t e = 0; e < degree; ++e) {
    any |= OrMergeImpl(dst, masks + size_t{neighbors[e]} * trials, trials);
  }
  _mm256_zeroupper();
  return any;
}

#else  // !__AVX2__ — unreachable stubs (dispatch never selects kAvx2).

void AddVectorsAvx2(const double*, const double*, double*, size_t) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
}
void AxpyAvx2(double, const double*, double*, size_t) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
}
void ScaleAvx2(double, double*, size_t) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
}
bool OrMergeAvx2(uint64_t*, const uint64_t*, size_t) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
  return false;
}
bool OrMergeRowAvx2(uint64_t*, const uint64_t*, size_t, const uint32_t*,
                    size_t) {
  DPKRON_CHECK_MSG(false, "AVX2 kernel called in a non-AVX2 build");
  return false;
}

#endif  // __AVX2__

}  // namespace dpkron
