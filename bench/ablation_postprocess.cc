// Ablation: how much of Algorithm 1's accuracy comes from the Hay et al.
// constrained-inference post-processing of the noisy degree sequence?
//
// For a sweep of ε we privatize the degree sequence with and without the
// isotonic projection (and without the range clamp) and compare the
// relative errors of the derived features Ẽ, H̃, T̃.

#include <cmath>
#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/dp/degree_sequence.h"
#include "src/estimation/features.h"
#include "src/graph/degree.h"
#include "src/skg/sampler.h"

int main() {
  using namespace dpkron;
  std::printf("# ablation_postprocess: Hay et al. constrained inference\n");
  Rng rng(123);
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, 12, rng);  // mean degree ~10
  const double e_true = double(g.NumEdges());
  const double h_true = double(CountWedges(g));
  const double t_true = double(CountTripins(g));

  SeriesTable table("postprocess_ablation/feature_relative_error");
  const double epsilons[] = {0.05, 0.1, 0.2, 0.5, 1.0};
  const uint32_t trials = 10;
  for (double epsilon : epsilons) {
    double raw_e = 0, raw_h = 0, raw_t = 0;
    double fit_e = 0, fit_h = 0, fit_t = 0;
    for (uint32_t trial = 0; trial < trials; ++trial) {
      // Matched noise draws via identical seeds.
      Rng rng_raw(1000 + trial), rng_fit(1000 + trial);
      PrivateDegreeOptions raw_options;
      raw_options.postprocess = false;
      raw_options.clamp_to_range = false;
      PrivateDegreeOptions fit_options;
      fit_options.postprocess = true;
      fit_options.clamp_to_range = true;
      const auto d_raw = PrivateDegreeSequence(g, epsilon, rng_raw, raw_options);
      const auto d_fit = PrivateDegreeSequence(g, epsilon, rng_fit, fit_options);
      raw_e += std::fabs(EdgesFromDegrees(d_raw) - e_true) / e_true;
      raw_h += std::fabs(HairpinsFromDegrees(d_raw) - h_true) / h_true;
      raw_t += std::fabs(TripinsFromDegrees(d_raw) - t_true) / t_true;
      fit_e += std::fabs(EdgesFromDegrees(d_fit) - e_true) / e_true;
      fit_h += std::fabs(HairpinsFromDegrees(d_fit) - h_true) / h_true;
      fit_t += std::fabs(TripinsFromDegrees(d_fit) - t_true) / t_true;
    }
    table.Add("raw/edges", epsilon, raw_e / trials);
    table.Add("raw/hairpins", epsilon, raw_h / trials);
    table.Add("raw/tripins", epsilon, raw_t / trials);
    table.Add("postprocessed/edges", epsilon, fit_e / trials);
    table.Add("postprocessed/hairpins", epsilon, fit_h / trials);
    table.Add("postprocessed/tripins", epsilon, fit_t / trials);
    std::printf("eps=%-5g  E err raw=%.4f fit=%.4f | H err raw=%.4f fit=%.4f"
                " | T err raw=%.4f fit=%.4f\n",
                epsilon, raw_e / trials, fit_e / trials, raw_h / trials,
                fit_h / trials, raw_t / trials, fit_t / trials);
  }
  table.Print();
  return 0;
}
