#include "src/dp/degree_sequence.h"

#include <algorithm>

#include "src/common/stat_cache.h"
#include "src/dp/isotonic.h"
#include "src/dp/laplace_mechanism.h"
#include "src/graph/degree.h"

namespace dpkron {

Result<std::vector<double>> PrivatizeSortedDegrees(
    const std::vector<uint32_t>& sorted_degrees, double epsilon,
    uint32_t num_nodes, Rng& rng, const PrivateDegreeOptions& options) {
  // One vector-Laplace mechanism in the codebase: the noising and its
  // degenerate-parameter validation live in AddLaplaceNoiseVector.
  const std::vector<double> values(sorted_degrees.begin(),
                                   sorted_degrees.end());
  auto noisy_result = AddLaplaceNoiseVector(
      values, kDegreeSequenceSensitivity, epsilon, rng);
  if (!noisy_result.ok()) return noisy_result.status();
  std::vector<double> noisy = std::move(noisy_result).value();
  if (options.postprocess) {
    noisy = IsotonicRegression(noisy);
  }
  if (options.clamp_to_range) {
    const double max_degree =
        num_nodes > 0 ? static_cast<double>(num_nodes - 1) : 0.0;
    for (double& d : noisy) d = std::clamp(d, 0.0, max_degree);
  }
  return noisy;
}

Result<std::vector<double>> PrivateDegreeSequence(
    GraphView graph, double epsilon, Rng& rng,
    const PrivateDegreeOptions& options) {
  // The sorted degree sequence is the deterministic half of the
  // mechanism; only the noise depends on (ε, rng). Serving it through
  // the StatCache (durably — a plain POD vector) lets an ε/seed sweep
  // extract it once per graph and later processes reload it from disk.
  const auto sorted =
      StatCache::Instance().GetOrComputeDurable<std::vector<uint32_t>>(
          "sorted_degrees", CacheKey().Mix(graph.ContentFingerprint()).digest(),
          [&graph] { return SortedDegreeVector(graph); },
          [](const std::vector<uint32_t>& degrees, RecordBuilder& rec) {
            EncodePodVector(rec, degrees);
          },
          [](RecordParser& rec) -> std::optional<std::vector<uint32_t>> {
            std::vector<uint32_t> degrees;
            if (!DecodePodVector(rec, &degrees)) return std::nullopt;
            return degrees;
          });
  return PrivatizeSortedDegrees(*sorted, epsilon, graph.NumNodes(), rng,
                                options);
}

}  // namespace dpkron
