// Registry of the paper's evaluation datasets (§4.2, Table 1) and their
// in-repo substitutes. Paper metadata (node/edge counts and the Table 1
// parameter estimates) is recorded verbatim so benches can print
// paper-vs-measured side by side.

#ifndef DPKRON_DATASETS_REGISTRY_H_
#define DPKRON_DATASETS_REGISTRY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/skg/initiator.h"

namespace dpkron {

struct DatasetInfo {
  std::string name;        // substitute name, e.g. "CA-GrQC-like"
  std::string paper_name;  // dataset name in the paper
  std::string kind;        // "affiliation" | "preferential" | "kronecker"
                           // (file-backed sources use their GraphSource
                           // kind name here)
  uint32_t paper_nodes = 0;
  uint64_t paper_edges = 0;
  // Table 1 rows (a, b, c) exactly as printed in the paper.
  Initiator2 paper_kronfit;
  Initiator2 paper_kronmom;
  Initiator2 paper_private;
  // Produces the substitute graph. The registry entry IS the dispatch:
  // MakeDataset looks the name up here instead of keeping a parallel
  // if-chain of names. nullptr only for synthesized entries describing
  // file-backed sources (which load through GraphSource, not here).
  Graph (*generator)(Rng&) = nullptr;
};

// Substitute generators, calibrated to the paper's N and E.
Graph CaGrQcLike(Rng& rng);    // CA-GrQC:  N=5242,  E=28980 (affiliation)
Graph CaHepThLike(Rng& rng);   // CA-HepTh: N=9877,  E=51971 (affiliation)
Graph As20Like(Rng& rng);      // AS20:     N=6474,  E=26467 (pref. attach.)
// The paper's synthetic source: Θ = [0.99 0.45; 0.45 0.25], k = 14.
Graph SyntheticKronecker(Rng& rng);
inline constexpr Initiator2 kSyntheticTrueTheta{0.99, 0.45, 0.25};
inline constexpr uint32_t kSyntheticK = 14;

// Metadata for the four Table 1 datasets, in paper order.
const std::vector<DatasetInfo>& PaperDatasets();

// The registry entry named `name`, or nullptr.
const DatasetInfo* FindDataset(const std::string& name);

// Generates the substitute graph for a registry entry by name
// ("CA-GrQC-like", "CA-HepTh-like", "AS20-like", "Synthetic-SKG") via
// the entry's generator. Aborts (CHECK) on an unknown name; callers
// that need a recoverable error go through GraphSource resolution.
Graph MakeDataset(const std::string& name, Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_DATASETS_REGISTRY_H_
