// Experiment-output writers used by the scenario engine and benches.
//
// Every scenario emits (1) machine-readable TSV blocks — one row per
// plotted point, tagged with the series name — (2) a human-readable
// summary, and (3) a structured JSON document (BENCH_scenarios.json)
// assembled with JsonWriter. Keeping the formats in one place makes the
// experiment outputs uniform and trivially grep-able / plottable.

#ifndef DPKRON_COMMON_TABLE_WRITER_H_
#define DPKRON_COMMON_TABLE_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace dpkron {

// Accumulates named series of (x, y) points and prints them as TSV.
class SeriesTable {
 public:
  struct Row {
    std::string series;
    double x;
    double y;
  };

  // `experiment` tags every emitted row (e.g. "fig1_ca_grqc/hop_plot").
  explicit SeriesTable(std::string experiment);

  void Add(const std::string& series, double x, double y);

  // Prints "# experiment<TAB>series<TAB>x<TAB>y" header then all rows to
  // `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  size_t size() const { return rows_.size(); }
  const std::string& experiment() const { return experiment_; }
  const std::vector<Row>& rows() const { return rows_; }

 private:
  std::string experiment_;
  std::vector<Row> rows_;
};

// Prints a titled key/value block, e.g. fitted parameters.
class SummaryBlock {
 public:
  explicit SummaryBlock(std::string title);

  void Add(const std::string& key, double value);
  void Add(const std::string& key, const std::string& value);

  void Print(std::FILE* out = stdout) const;

  const std::string& title() const { return title_; }
  const std::vector<std::pair<std::string, std::string>>& items() const {
    return items_;
  }

 private:
  std::string title_;
  std::vector<std::pair<std::string, std::string>> items_;
};

// `s` with JSON string escapes applied (quotes, backslashes, control
// characters as \uXXXX) — no surrounding quotes.
std::string JsonEscape(const std::string& s);

// Minimal streaming JSON emitter. The caller drives structure with
// Begin/End calls; separators are inserted automatically. Numbers are
// written with %.17g (round-trippable doubles); non-finite values have
// no JSON representation and are emitted as null. Misnesting (e.g. a
// bare value where a key is required) is a programming error and CHECKs.
class JsonWriter {
 public:
  JsonWriter();

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Object member key; must be followed by exactly one value or Begin*.
  void Key(const std::string& key);

  void String(const std::string& value);
  // Splices a pre-serialized JSON value verbatim (one value position,
  // like String). Used by the sweep engine to merge checkpointed run
  // documents byte-identically; the caller vouches that `json` is one
  // complete JSON value.
  void Raw(const std::string& json);
  void Number(double value);  // NaN / ±Inf -> null
  void Int(int64_t value);
  void UInt(uint64_t value);
  void Bool(bool value);
  void Null();

  // The document so far. Complete once every Begin has its End.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();  // comma / key / nesting bookkeeping for all values

  struct Scope {
    char kind;         // '{' or '['
    bool has_element;  // true once the container has a first member
  };

  std::string out_;
  std::vector<Scope> scopes_;
  bool after_key_ = false;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_TABLE_WRITER_H_
