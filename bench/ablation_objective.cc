// Ablation: the Dist × Norm menu of Equation (2).
//
// Gleich & Owen report that DistSq + NormF² gives robust estimates; the
// paper adopts that combination. We fit every (Dist, Norm) pair on a
// synthetic SKG where ground truth is known and report the mean parameter
// recovery error over several trials, with exact features and with
// (ε, δ) = (0.2, 0.01) private features. The private column exercises the
// *raw* Eq. (2) fit (no floor-dropping) — showing why the private
// estimator guards against floor-valued counts.

#include <cstdio>

#include "src/common/rng.h"
#include "src/common/table_writer.h"
#include "src/dp/private_features.h"
#include "src/estimation/kronmom.h"
#include "src/skg/sampler.h"

int main() {
  using namespace dpkron;
  const Initiator2 truth{0.99, 0.45, 0.25};
  const uint32_t k = 12;
  const uint32_t trials = 5;
  std::printf("# ablation_objective: truth=%s k=%u trials=%u\n",
              truth.ToString().c_str(), k, trials);

  Rng rng(99);
  const DistKind dists[] = {DistKind::kSquared, DistKind::kAbsolute};
  const NormKind norms[] = {NormKind::kF, NormKind::kF2, NormKind::kE,
                            NormKind::kE2};
  double err_exact[2][4] = {};
  double err_private[2][4] = {};

  for (uint32_t trial = 0; trial < trials; ++trial) {
    const Graph g = SampleSkg(truth, k, rng);
    const GraphFeatures exact = ComputeFeatures(g);
    const auto private_features = ComputePrivateFeatures(g, 0.2, 0.01, rng);
    if (!private_features.ok()) {
      std::fprintf(stderr, "%s\n",
                   private_features.status().ToString().c_str());
      return 1;
    }
    for (int di = 0; di < 2; ++di) {
      for (int ni = 0; ni < 4; ++ni) {
        KronMomOptions options;
        options.objective.dist = dists[di];
        options.objective.norm = norms[ni];
        err_exact[di][ni] += MaxAbsDifference(
            FitKronMomToFeatures(exact, k, options).theta, truth);
        err_private[di][ni] += MaxAbsDifference(
            FitKronMomToFeatures(private_features.value().features, k,
                                 options)
                .theta,
            truth);
      }
    }
  }

  SeriesTable table("objective_ablation/theta_linf_error");
  std::printf("\n== mean recovery error |theta_hat - theta_true|_inf ==\n");
  std::printf("  %-20s %-12s %-12s\n", "Dist/Norm", "exact F", "private ~F");
  int combo = 0;
  for (int di = 0; di < 2; ++di) {
    for (int ni = 0; ni < 4; ++ni) {
      const std::string name = std::string(DistKindName(dists[di])) + "+" +
                               NormKindName(norms[ni]);
      const double exact_mean = err_exact[di][ni] / trials;
      const double private_mean = err_private[di][ni] / trials;
      std::printf("  %-20s %-12.4f %-12.4f\n", name.c_str(), exact_mean,
                  private_mean);
      table.Add(name + "/exact", combo, exact_mean);
      table.Add(name + "/private", combo, private_mean);
      ++combo;
    }
  }
  table.Print();
  return 0;
}
