// Breadth-first search primitives.

#ifndef DPKRON_GRAPH_BFS_H_
#define DPKRON_GRAPH_BFS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

// Marker for nodes not reachable from the BFS source.
inline constexpr int32_t kUnreachable = -1;

// Hop distances from `source` to every node (kUnreachable if none).
std::vector<int32_t> BfsDistances(GraphView graph, Graph::NodeId source);

// Reusable BFS workspace: amortizes the O(N) distance-array reset across
// many sources (the exact hop plot runs one BFS per node).
class BfsScratch {
 public:
  explicit BfsScratch(uint32_t num_nodes);

  // Runs BFS from `source`; afterwards Distance(v) is valid until the next
  // Run. Returns the number of nodes reached (including the source).
  uint32_t Run(GraphView graph, Graph::NodeId source);

  int32_t Distance(Graph::NodeId v) const {
    return stamp_[v] == current_stamp_ ? distance_[v] : kUnreachable;
  }

  // Nodes visited by the last Run, in BFS order.
  const std::vector<Graph::NodeId>& Visited() const { return queue_; }

 private:
  std::vector<int32_t> distance_;
  std::vector<uint32_t> stamp_;
  std::vector<Graph::NodeId> queue_;
  uint32_t current_stamp_ = 0;
};

}  // namespace dpkron

#endif  // DPKRON_GRAPH_BFS_H_
