// Figure 2 reproduction: AS20(-like), single realizations per estimator
// (the paper reduces clutter by omitting the expected series here).

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  dpkron::bench::FigureConfig config;
  config.experiment = "fig2_as20";
  config.dataset = "AS20-like";
  return dpkron::bench::RunFigureBench(config, argc, argv);
}
