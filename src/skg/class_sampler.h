// Exact O(E)-expected-time SKG sampling by probability-class skipping
// ("grass-hopping" in the later Gleich et al. terminology).
//
// Under a symmetric 2×2 initiator every unordered pair {u, v} (u ≠ v) of
// the 2^k-node graph falls into one of O(k²) probability classes indexed
// by (i, j) = (#digit positions where both bits are 1, #positions where
// the bits differ): P_uv = a^(k−i−j) · b^j · c^i. Within a class all
// pairs are exchangeable, so the exact sampler is:
//   for each class: walk its pairs with geometric skips of parameter
//   p(i, j) (the exact Binomial thinning), unranking each hit index into
//   a concrete pair via combinadics.
// Expected cost O(E[E] + k²) versus O(4^k) for the naive exact sampler,
// with the *identical* per-pair Bernoulli distribution — unlike the
// ball-dropping generator, which is approximate.

#ifndef DPKRON_SKG_CLASS_SAMPLER_H_
#define DPKRON_SKG_CLASS_SAMPLER_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/skg/initiator.h"

namespace dpkron {

// One realization, exact distribution. Requires 1 <= k <= 30.
Graph SampleSkgClassSkip(const Initiator2& theta, uint32_t k, Rng& rng);

namespace internal_class_sampler {

// Number of unordered pairs {u, v}, u ≠ v, in class (i, j) of order k:
// C(k, i) · C(k−i, j) · 2^(j−1) for j ≥ 1, and 0 for j = 0 (equal-digit
// pairs are the diagonal, which the undirected convention discards).
uint64_t ClassSize(uint32_t k, uint32_t i, uint32_t j);

// Unranks `rank` ∈ [0, ClassSize) into the pair (u, v), u ≠ v, of class
// (i, j). The mapping is a bijection; used by the sampler and the tests.
struct PairUV {
  uint64_t u;
  uint64_t v;
};
PairUV UnrankPair(uint32_t k, uint32_t i, uint32_t j, uint64_t rank);

// Lexicographic unranking of an m-combination of {0, ..., n−1}.
// out must have room for m entries.
void UnrankCombination(uint32_t n, uint32_t m, uint64_t rank, uint32_t* out);

// Binomial coefficient with saturation guard (aborts past uint64).
uint64_t Choose(uint32_t n, uint32_t m);

}  // namespace internal_class_sampler

}  // namespace dpkron

#endif  // DPKRON_SKG_CLASS_SAMPLER_H_
