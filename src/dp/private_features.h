// Differentially private matching statistics ~F = (Ẽ, H̃, T̃, ∆̃) —
// steps 1–5 of Algorithm 1 plus the Theorem 4.9 composition accounting.
//
// Budget split (as in Algorithm 1): the degree sequence gets (ε/2, 0)
// and the triangle count gets (ε/2, δ), so ~F is (ε, δ)-private overall.

#ifndef DPKRON_DP_PRIVATE_FEATURES_H_
#define DPKRON_DP_PRIVATE_FEATURES_H_

#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dp/degree_sequence.h"
#include "src/dp/privacy_budget.h"
#include "src/estimation/features.h"
#include "src/graph/graph_view.h"

namespace dpkron {

struct PrivateFeaturesOptions {
  PrivateDegreeOptions degrees;
  // Counts below this are clamped up before fitting (post-processing;
  // negative or zero counts carry no signal for moment matching).
  double feature_floor = 1.0;
};

struct PrivateFeaturesResult {
  GraphFeatures features;       // clamped, ready for the estimator
  GraphFeatures raw;            // pre-clamp (diagnostics)
  std::vector<double> noisy_degrees;
  double smooth_sensitivity = 0.0;  // SS_{β,∆}(G) used for ∆̃
  double beta = 0.0;
  // False if SS came from the conservative far-pair fallback rather
  // than the exact profile (see PrivateTriangleResult).
  bool exact_sensitivity = true;
};

// Computes ~F with privacy charges drawn from `budget` (labels
// "degree_sequence" and "triangle_count"). Fails without touching the
// graph if the budget cannot cover (epsilon, delta).
Result<PrivateFeaturesResult> ComputePrivateFeatures(
    GraphView graph, double epsilon, double delta, PrivacyBudget& budget,
    Rng& rng, const PrivateFeaturesOptions& options = {});

// Convenience overload that provisions a fresh (epsilon, delta) budget.
Result<PrivateFeaturesResult> ComputePrivateFeatures(
    GraphView graph, double epsilon, double delta, Rng& rng,
    const PrivateFeaturesOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_DP_PRIVATE_FEATURES_H_
