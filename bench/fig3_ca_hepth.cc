// Figure 3 reproduction: CA-HepTh(-like), single realizations per
// estimator.

#include "bench/figure_harness.h"

int main(int argc, char** argv) {
  dpkron::bench::FigureConfig config;
  config.experiment = "fig3_ca_hepth";
  config.dataset = "CA-HepTh-like";
  return dpkron::bench::RunFigureBench(config, argc, argv);
}
