// The four matching statistics F(G) = (E, H, ∆, T) of §3.4, as a value
// type shared by the non-private and private estimation paths.
//
// Fields are doubles because the differentially private pipeline produces
// fractional (and occasionally negative) approximations of the counts; the
// exact path fills them with integers.

#ifndef DPKRON_ESTIMATION_FEATURES_H_
#define DPKRON_ESTIMATION_FEATURES_H_

#include <cstdint>
#include <string>

#include "src/graph/graph_view.h"
#include "src/skg/moments.h"

namespace dpkron {

struct GraphFeatures {
  double edges = 0.0;      // E
  double hairpins = 0.0;   // H (wedges / 2-stars)
  double triangles = 0.0;  // ∆
  double tripins = 0.0;    // T (3-stars)

  std::string ToString() const;
};

// Exact feature extraction (triangles via the forward algorithm, stars
// from the degree sequence).
GraphFeatures ComputeFeatures(GraphView graph);

// ComputeFeatures served through the process-wide StatCache when it is
// enabled (keyed by the graph's content fingerprint; the features are a
// deterministic pure function of the graph). The KronMom and private
// estimation routes call this, so a sweep extracts each graph's exact
// features once instead of once per run.
GraphFeatures ComputeFeaturesCached(GraphView graph);

// E, H, T from a (possibly noisy, fractional) degree vector using the
// Algorithm 1 step-3 formulas; `triangles` must be supplied separately.
GraphFeatures FeaturesFromDegrees(const std::vector<double>& degrees,
                                  double triangles);

// Pointwise max(value, floor) on every field — the post-processing clamp
// applied to privatized features before fitting (noise can push counts
// negative; a count below `floor` carries no usable signal for moment
// matching). Post-processing preserves differential privacy.
GraphFeatures ClampFeatures(const GraphFeatures& features, double floor = 1.0);

// Conversion from model-expected moments (for tests and objectives).
GraphFeatures FromMoments(const SkgMoments& moments);

}  // namespace dpkron

#endif  // DPKRON_ESTIMATION_FEATURES_H_
