// Smooth-sensitivity mechanisms for star counts (hairpins H and tripins
// T), in the spirit of Karwa, Raskhodnikova, Smith & Yaroslavtsev
// (PVLDB'11), which the paper cites as the route to private k-star
// statistics.
//
// Algorithm 1 gets H̃ and T̃ indirectly from the private degree sequence;
// this module privatizes them *directly*, enabling the
// `ablation_feature_route` experiment that quantifies why the paper's
// degree-based route wins.
//
// Sensitivity bounds (d(1) ≥ d(2) are the two largest degrees, n nodes):
//   * edges E: global sensitivity 1 (plain Laplace mechanism);
//   * hairpins H: flipping {i,j} changes H by d_i + d_j (pre-flip
//     degrees, adding) or (d_i−1) + (d_j−1) (removing); s extra flips
//     raise the top pair sum by ≤ 2s, giving the β-smooth upper bound
//       SS_H ≤ max_s e^{−βs} · min(d(1) + d(2) + 2s, 2n − 2);
//   * tripins T: flipping {i,j} changes T by C(d_i,2) + C(d_j,2); each
//     flip raises a degree by ≤ 1, so
//       SS_T ≤ max_s e^{−βs} · min(C(d(1)+s, 2) + C(d(2)+s, 2),
//                                   (n−1)(n−2)).
// Both bounds satisfy the smoothness condition exactly (the +2s / +s
// growth dominates the ±1 movement of the top degrees across an edge
// flip), so Theorem 4.8 applies.

#ifndef DPKRON_DP_STAR_SENSITIVITY_H_
#define DPKRON_DP_STAR_SENSITIVITY_H_

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/dp/privacy_budget.h"
#include "src/estimation/features.h"
#include "src/graph/graph_view.h"

namespace dpkron {

// β-smooth upper bound on the sensitivity of the wedge count H.
double SmoothSensitivityWedges(GraphView graph, double beta);

// β-smooth upper bound on the sensitivity of the tripin count T.
double SmoothSensitivityTripins(GraphView graph, double beta);

struct PrivateCountResult {
  double value = 0.0;
  double smooth_sensitivity = 0.0;
  double beta = 0.0;
};

// (ε, δ)-private wedge / tripin counts via Theorem 4.8.
PrivateCountResult PrivateWedgeCount(GraphView graph, double epsilon,
                                     double delta, Rng& rng);
PrivateCountResult PrivateTripinCount(GraphView graph, double epsilon,
                                      double delta, Rng& rng);

// The "direct route" feature vector: E via the Laplace mechanism (global
// sensitivity 1) at ε/4, and H, T, ∆ via their smooth-sensitivity
// mechanisms at (ε/4, δ/3) each — (ε, δ) in total by Theorem 4.9.
// Contrast with ComputePrivateFeatures (Algorithm 1's degree route).
Result<GraphFeatures> ComputeDirectPrivateFeatures(GraphView graph,
                                                   double epsilon,
                                                   double delta,
                                                   PrivacyBudget& budget,
                                                   Rng& rng,
                                                   double feature_floor = 1.0);

}  // namespace dpkron

#endif  // DPKRON_DP_STAR_SENSITIVITY_H_
