#include "src/estimation/objective.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/estimation/features.h"
#include "src/skg/moments.h"

namespace dpkron {
namespace {

GraphFeatures FeaturesAt(const Initiator2& theta, uint32_t k) {
  return FromMoments(ExpectedMoments(theta, k));
}

TEST(ObjectiveTest, ZeroAtGeneratingParameters) {
  const Initiator2 theta{0.99, 0.45, 0.25};
  const uint32_t k = 10;
  const GraphFeatures observed = FeaturesAt(theta, k);
  for (DistKind dist : {DistKind::kSquared, DistKind::kAbsolute}) {
    for (NormKind norm :
         {NormKind::kF, NormKind::kF2, NormKind::kE, NormKind::kE2}) {
      ObjectiveOptions options;
      options.dist = dist;
      options.norm = norm;
      EXPECT_NEAR(MomentObjective(theta, k, observed, options), 0.0, 1e-9)
          << DistKindName(dist) << "/" << NormKindName(norm);
    }
  }
}

TEST(ObjectiveTest, PositiveAwayFromTruth) {
  const Initiator2 theta{0.99, 0.45, 0.25};
  const uint32_t k = 10;
  const GraphFeatures observed = FeaturesAt(theta, k);
  EXPECT_GT(MomentObjective({0.8, 0.45, 0.25}, k, observed), 1e-4);
  EXPECT_GT(MomentObjective({0.99, 0.55, 0.25}, k, observed), 1e-4);
}

TEST(ObjectiveTest, OutOfBoxPenalized) {
  const GraphFeatures observed = FeaturesAt({0.9, 0.5, 0.2}, 8);
  const double inside = MomentObjective({0.9, 0.5, 0.2}, 8, observed);
  const double outside = MomentObjective({1.3, 0.5, 0.2}, 8, observed);
  EXPECT_GT(outside, inside + 1e4);
}

TEST(ObjectiveTest, FeatureSubsetsChangeValue) {
  const uint32_t k = 8;
  const GraphFeatures observed = FeaturesAt({0.9, 0.5, 0.2}, k);
  const Initiator2 off{0.85, 0.5, 0.25};
  ObjectiveOptions all;
  ObjectiveOptions no_triangles;
  no_triangles.use_triangles = false;
  const double with_all = MomentObjective(off, k, observed, all);
  const double without = MomentObjective(off, k, observed, no_triangles);
  EXPECT_GT(with_all, without);
}

TEST(ObjectiveTest, NormFloorPreventsInfinity) {
  // Observed features of an empty-ish graph with NormF2: denominator would
  // be 0 for a zero observed count; value must stay finite.
  GraphFeatures observed;
  observed.edges = 0.0;
  observed.hairpins = 0.0;
  observed.triangles = 0.0;
  observed.tripins = 0.0;
  const double value = MomentObjective({0.9, 0.5, 0.2}, 6, observed);
  EXPECT_TRUE(std::isfinite(value));
}

TEST(ObjectiveTest, AbsoluteDistanceScalesLinearly) {
  const uint32_t k = 8;
  GraphFeatures observed = FeaturesAt({0.9, 0.5, 0.2}, k);
  ObjectiveOptions options;
  options.dist = DistKind::kAbsolute;
  options.norm = NormKind::kF;
  options.use_hairpins = false;
  options.use_triangles = false;
  options.use_tripins = false;
  // Objective = |E_obs − E_model| / E_obs; doubling the observed count
  // from the model value gives exactly 1/2... compute two explicit points.
  const double expected_edges = ExpectedEdges({0.9, 0.5, 0.2}, k);
  observed.edges = 2 * expected_edges;
  const double value = MomentObjective({0.9, 0.5, 0.2}, k, observed, options);
  EXPECT_NEAR(value, 0.5, 1e-9);
}

TEST(ObjectiveTest, KindNames) {
  EXPECT_STREQ(DistKindName(DistKind::kSquared), "DistSq");
  EXPECT_STREQ(DistKindName(DistKind::kAbsolute), "DistAbs");
  EXPECT_STREQ(NormKindName(NormKind::kF), "NormF");
  EXPECT_STREQ(NormKindName(NormKind::kE2), "NormE2");
}

}  // namespace
}  // namespace dpkron
