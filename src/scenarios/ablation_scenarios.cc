// The six ablation studies as registered scenarios (ported from the
// deleted ablation_* binaries). RNG consumption order matches the
// pre-engine binaries, so fixed-seed rows reproduce them; smoke mode
// shrinks the non-declarative axes (graph sizes, k ranges, dataset
// lists) on top of the engine's sweep truncation.

#include "src/scenarios/scenarios.h"

#include <cmath>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/private_estimator.h"
#include "src/core/scenario.h"
#include "src/datasets/affiliation.h"
#include "src/datasets/registry.h"
#include "src/dp/degree_sequence.h"
#include "src/dp/private_features.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/dp/star_sensitivity.h"
#include "src/estimation/features.h"
#include "src/estimation/kronmom.h"
#include "src/estimation/kronmom_n.h"
#include "src/graph/degree.h"
#include "src/graph/triangles.h"
#include "src/skg/moments_n.h"
#include "src/skg/sampler.h"

namespace dpkron {
namespace {

// -------------------------------------------------------- epsilon sweep
//
// Utility of the private estimator as a function of ε (extends the
// paper's single operating point ε = 0.2): L∞ distance between Θ̃ and
// the non-private KronMom estimate, and relative error of each
// privatized feature, on a synthetic SKG and a co-authorship-like graph.

void SweepOnGraph(const std::string& label, GraphView graph,
                  const ScenarioParams& p, Rng& rng, ScenarioOutput& out,
                  SeriesTable& theta_error, SeriesTable& feature_error) {
  const KronMomResult non_private = FitKronMom(graph);
  const GraphFeatures exact = ComputeFeatures(graph);
  for (double epsilon : p.sweep_epsilons) {
    double sum_theta = 0.0;
    double sum_edges = 0.0, sum_hairpins = 0.0, sum_triangles = 0.0,
           sum_tripins = 0.0;
    for (uint32_t t = 0; t < p.trials; ++t) {
      PrivacyBudget budget(epsilon, p.delta);
      const auto fit =
          EstimatePrivateSkg(graph, epsilon, p.delta, budget, rng);
      if (!fit.ok()) continue;
      if (t == 0) out.RecordBudget(budget, /*print=*/false);
      out.RecordExactSensitivity(fit.value().exact_sensitivity);
      sum_theta += MaxAbsDifference(fit.value().theta, non_private.theta);
      const GraphFeatures& f = fit.value().private_features;
      sum_edges += std::fabs(f.edges - exact.edges) / exact.edges;
      sum_hairpins += std::fabs(f.hairpins - exact.hairpins) / exact.hairpins;
      sum_triangles +=
          std::fabs(f.triangles - exact.triangles) / exact.triangles;
      sum_tripins += std::fabs(f.tripins - exact.tripins) / exact.tripins;
    }
    theta_error.Add(label, epsilon, sum_theta / p.trials);
    feature_error.Add(label + "/edges", epsilon, sum_edges / p.trials);
    feature_error.Add(label + "/hairpins", epsilon, sum_hairpins / p.trials);
    feature_error.Add(label + "/triangles", epsilon,
                      sum_triangles / p.trials);
    feature_error.Add(label + "/tripins", epsilon, sum_tripins / p.trials);
  }
}

Status RunEpsilonSweep(const ScenarioSpec& spec, const ScenarioParams& p,
                       ScenarioOutput& out) {
  (void)spec;
  out.Printf("# ablation_epsilon_sweep: trials=%u delta=%g\n", p.trials,
             p.delta);
  Rng rng(p.seed);

  SeriesTable& theta_error = out.Table("theta_linf_vs_kronmom");
  SeriesTable& feature_error = out.Table("feature_relative_error");

  const uint32_t k = p.smoke ? 10 : 12;
  const Graph synthetic = SampleSkg({0.99, 0.45, 0.25}, k, rng);
  SweepOnGraph("synthetic-k" + std::to_string(k), synthetic, p, rng, out,
               theta_error, feature_error);

  AffiliationOptions options;
  options.num_authors = p.smoke ? 1024 : 4096;
  options.num_papers = p.smoke ? 650 : 2600;
  const Graph coauth = AffiliationGraph(options, rng);
  SweepOnGraph("coauthorship-like", coauth, p, rng, out, theta_error,
               feature_error);
  return Status::Ok();
}

// -------------------------------------------------------- feature route
//
// Algorithm 1's degree route vs direct smooth-sensitivity privatization
// of each count: one ε/2 charge on the degree sequence buys Ẽ, H̃ AND T̃
// simultaneously (post-processing), versus splitting ε four ways and
// paying the large worst-case star sensitivities.

Status RunFeatureRoute(const ScenarioSpec& spec, const ScenarioParams& p,
                       ScenarioOutput& out) {
  (void)spec;
  out.Printf("# ablation_feature_route: degree route (Algorithm 1) vs "
             "direct smooth-sensitivity route\n");
  Rng rng(p.seed);
  const uint32_t k = p.smoke ? 10 : 12;
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, k, rng);  // mean deg ~10
  const GraphFeatures exact = ComputeFeatures(g);
  out.Printf("graph: %u nodes, %llu edges; exact %s\n", g.NumNodes(),
             static_cast<unsigned long long>(g.NumEdges()),
             exact.ToString().c_str());

  SeriesTable& table = out.Table("relative_error");
  for (double epsilon : p.sweep_epsilons) {
    double deg_e = 0, deg_h = 0, deg_t = 0;
    double dir_e = 0, dir_h = 0, dir_t = 0;
    for (uint32_t trial = 0; trial < p.trials; ++trial) {
      const auto degree_route =
          ComputePrivateFeatures(g, epsilon, p.delta, rng);
      PrivacyBudget budget(epsilon, p.delta);
      const auto direct_route =
          ComputeDirectPrivateFeatures(g, epsilon, p.delta, budget, rng);
      if (!degree_route.ok() || !direct_route.ok()) continue;
      if (trial == 0) out.RecordBudget(budget, /*print=*/false);
      out.RecordExactSensitivity(degree_route.value().exact_sensitivity);
      const GraphFeatures& a = degree_route.value().features;
      const GraphFeatures& b = direct_route.value();
      deg_e += std::fabs(a.edges - exact.edges) / exact.edges;
      deg_h += std::fabs(a.hairpins - exact.hairpins) / exact.hairpins;
      deg_t += std::fabs(a.tripins - exact.tripins) / exact.tripins;
      dir_e += std::fabs(b.edges - exact.edges) / exact.edges;
      dir_h += std::fabs(b.hairpins - exact.hairpins) / exact.hairpins;
      dir_t += std::fabs(b.tripins - exact.tripins) / exact.tripins;
    }
    table.Add("degree-route/edges", epsilon, deg_e / p.trials);
    table.Add("degree-route/hairpins", epsilon, deg_h / p.trials);
    table.Add("degree-route/tripins", epsilon, deg_t / p.trials);
    table.Add("direct-route/edges", epsilon, dir_e / p.trials);
    table.Add("direct-route/hairpins", epsilon, dir_h / p.trials);
    table.Add("direct-route/tripins", epsilon, dir_t / p.trials);
    out.Printf("eps=%-5g  E: deg=%.4f dir=%.4f | H: deg=%.4f dir=%.4f"
               " | T: deg=%.4f dir=%.4f\n",
               epsilon, deg_e / p.trials, dir_e / p.trials, deg_h / p.trials,
               dir_h / p.trials, deg_t / p.trials, dir_t / p.trials);
  }
  return Status::Ok();
}

// ------------------------------------------------------ model selection
//
// §3.3: "having N1 > 2 does not accrue a significant advantage". Fit
// symmetric 2×2 and 3×3 initiators on each evaluation dataset and
// compare the achieved Eq. (2) objective.

Status RunModelSelection(const ScenarioSpec& spec, const ScenarioParams& p,
                         ScenarioOutput& out) {
  (void)spec;
  out.Printf("# ablation_model_selection: N1 = 2 vs N1 = 3 (paper section"
             " 3.3 claim)\n");
  Rng rng(p.seed);
  SeriesTable& table = out.Table("objective");

  int index = 0;
  const std::vector<DatasetInfo> datasets = ScenarioDatasets(p);
  for (const DatasetInfo& info : datasets) {
    if (p.smoke && index >= 2) break;
    Rng dataset_rng = rng.Split();
    auto loaded = LoadScenarioGraph(info.name, p, dataset_rng);
    if (!loaded.ok()) return loaded.status();
    // The handle owns the backing (in-RAM or mmap'd); kernels see it
    // through its GraphView either way.
    const GraphHandle graph = std::move(loaded).value();
    const GraphFeatures observed = ComputeFeatures(graph);

    // N1 = 2 (paper's setting) via the dedicated fitter.
    const KronMomResult fit2 = FitKronMom(graph);

    // N1 = 3 via the general fitter.
    Rng fit_rng = rng.Split();
    KronMomNOptions options;
    const KronMomNResult fit3 = FitKronMomN(
        observed, 3, ChooseOrderN(graph.NumNodes(), 3), fit_rng, options);

    const auto theta3 = InitiatorN::Create(3, fit3.entries).value();
    const SkgMoments m3 = ExpectedMomentsN(theta3, fit3.k);

    out.Printf("\n== %s (E=%.0f H=%.0f Delta=%.0f T=%.3g) ==\n",
               info.name.c_str(), observed.edges, observed.hairpins,
               observed.triangles, observed.tripins);
    out.Printf("  N1=2: objective=%.4g  theta=%s (k=%u)\n", fit2.objective,
               fit2.theta.ToString().c_str(), fit2.k);
    out.Printf("  N1=3: objective=%.4g  (k=%u, %u^k=%.0f nodes)"
               "  E[E]=%.0f E[Delta]=%.0f\n",
               fit3.objective, fit3.k, 3, std::pow(3.0, fit3.k), m3.edges,
               m3.triangles);
    table.Add(info.name + "/n1=2", index, fit2.objective);
    table.Add(info.name + "/n1=3", index, fit3.objective);
    ++index;
  }
  out.Printf("\n(Lower objective = better moment match. The paper's claim"
             " holds when the N1=3 gain is marginal.)\n");
  return Status::Ok();
}

// ------------------------------------------------------------ objective
//
// The Dist × Norm menu of Equation (2): fit every pair on a synthetic
// SKG where ground truth is known and report mean parameter recovery
// error, with exact and with (ε, δ) private features. The private column
// exercises the *raw* Eq. (2) fit (no floor-dropping) — showing why the
// private estimator guards against floor-valued counts.

Status RunObjectiveAblation(const ScenarioSpec& spec,
                            const ScenarioParams& p, ScenarioOutput& out) {
  (void)spec;
  const Initiator2 truth{0.99, 0.45, 0.25};
  const uint32_t k = p.smoke ? 10 : 12;
  out.Printf("# ablation_objective: truth=%s k=%u trials=%u\n",
             truth.ToString().c_str(), k, p.trials);

  Rng rng(p.seed);
  const DistKind dists[] = {DistKind::kSquared, DistKind::kAbsolute};
  const NormKind norms[] = {NormKind::kF, NormKind::kF2, NormKind::kE,
                            NormKind::kE2};
  double err_exact[2][4] = {};
  double err_private[2][4] = {};

  for (uint32_t trial = 0; trial < p.trials; ++trial) {
    const Graph g = SampleSkg(truth, k, rng);
    const GraphFeatures exact = ComputeFeatures(g);
    const auto private_features =
        ComputePrivateFeatures(g, p.epsilon, p.delta, rng);
    if (!private_features.ok()) return private_features.status();
    out.RecordExactSensitivity(private_features.value().exact_sensitivity);
    for (int di = 0; di < 2; ++di) {
      for (int ni = 0; ni < 4; ++ni) {
        KronMomOptions options;
        options.objective.dist = dists[di];
        options.objective.norm = norms[ni];
        err_exact[di][ni] += MaxAbsDifference(
            FitKronMomToFeatures(exact, k, options).theta, truth);
        err_private[di][ni] += MaxAbsDifference(
            FitKronMomToFeatures(private_features.value().features, k,
                                 options)
                .theta,
            truth);
      }
    }
  }

  SeriesTable& table = out.Table("theta_linf_error");
  out.Printf("\n== mean recovery error |theta_hat - theta_true|_inf ==\n");
  out.Printf("  %-20s %-12s %-12s\n", "Dist/Norm", "exact F", "private ~F");
  int combo = 0;
  for (int di = 0; di < 2; ++di) {
    for (int ni = 0; ni < 4; ++ni) {
      const std::string name = std::string(DistKindName(dists[di])) + "+" +
                               NormKindName(norms[ni]);
      const double exact_mean = err_exact[di][ni] / p.trials;
      const double private_mean = err_private[di][ni] / p.trials;
      out.Printf("  %-20s %-12.4f %-12.4f\n", name.c_str(), exact_mean,
                 private_mean);
      table.Add(name + "/exact", combo, exact_mean);
      table.Add(name + "/private", combo, private_mean);
      ++combo;
    }
  }
  return Status::Ok();
}

// ---------------------------------------------------------- postprocess
//
// How much of Algorithm 1's accuracy comes from the Hay et al.
// constrained-inference post-processing of the noisy degree sequence?
// Privatize with and without the isotonic projection (matched noise
// draws) and compare the derived features Ẽ, H̃, T̃.

Status RunPostprocessAblation(const ScenarioSpec& spec,
                              const ScenarioParams& p, ScenarioOutput& out) {
  (void)spec;
  out.Printf("# ablation_postprocess: Hay et al. constrained inference\n");
  Rng rng(p.seed);
  const uint32_t k = p.smoke ? 10 : 12;
  const Graph g = SampleSkg({0.99, 0.55, 0.35}, k, rng);  // mean degree ~10
  const double e_true = double(g.NumEdges());
  const double h_true = double(CountWedges(g));
  const double t_true = double(CountTripins(g));

  SeriesTable& table = out.Table("feature_relative_error");
  for (double epsilon : p.sweep_epsilons) {
    double raw_e = 0, raw_h = 0, raw_t = 0;
    double fit_e = 0, fit_h = 0, fit_t = 0;
    for (uint32_t trial = 0; trial < p.trials; ++trial) {
      // Matched noise draws via identical seeds.
      Rng rng_raw(1000 + trial), rng_fit(1000 + trial);
      PrivateDegreeOptions raw_options;
      raw_options.postprocess = false;
      raw_options.clamp_to_range = false;
      PrivateDegreeOptions fit_options;
      fit_options.postprocess = true;
      fit_options.clamp_to_range = true;
      const auto d_raw_result =
          PrivateDegreeSequence(g, epsilon, rng_raw, raw_options);
      const auto d_fit_result =
          PrivateDegreeSequence(g, epsilon, rng_fit, fit_options);
      if (!d_raw_result.ok()) return d_raw_result.status();
      if (!d_fit_result.ok()) return d_fit_result.status();
      const std::vector<double>& d_raw = d_raw_result.value();
      const std::vector<double>& d_fit = d_fit_result.value();
      raw_e += std::fabs(EdgesFromDegrees(d_raw) - e_true) / e_true;
      raw_h += std::fabs(HairpinsFromDegrees(d_raw) - h_true) / h_true;
      raw_t += std::fabs(TripinsFromDegrees(d_raw) - t_true) / t_true;
      fit_e += std::fabs(EdgesFromDegrees(d_fit) - e_true) / e_true;
      fit_h += std::fabs(HairpinsFromDegrees(d_fit) - h_true) / h_true;
      fit_t += std::fabs(TripinsFromDegrees(d_fit) - t_true) / t_true;
    }
    table.Add("raw/edges", epsilon, raw_e / p.trials);
    table.Add("raw/hairpins", epsilon, raw_h / p.trials);
    table.Add("raw/tripins", epsilon, raw_t / p.trials);
    table.Add("postprocessed/edges", epsilon, fit_e / p.trials);
    table.Add("postprocessed/hairpins", epsilon, fit_h / p.trials);
    table.Add("postprocessed/tripins", epsilon, fit_t / p.trials);
    out.Printf("eps=%-5g  E err raw=%.4f fit=%.4f | H err raw=%.4f fit=%.4f"
               " | T err raw=%.4f fit=%.4f\n",
               epsilon, raw_e / p.trials, fit_e / p.trials, raw_h / p.trials,
               fit_h / p.trials, raw_t / p.trials, fit_t / p.trials);
  }
  return Status::Ok();
}

// --------------------------------------------------- smooth sensitivity
//
// Paper §5 future work: SS_∆ as a function of graph size. Measure LS_∆
// and SS_{β,∆} on SKG samples of increasing order k and on the
// co-authorship generator at increasing sizes, and report the noise
// scale 2·SS/ε versus the true triangle count.

Status RunSmoothSensitivity(const ScenarioSpec& spec,
                            const ScenarioParams& p, ScenarioOutput& out) {
  (void)spec;
  const double beta = p.epsilon / (2.0 * std::log(2.0 / p.delta));
  out.Printf("# ablation_smooth_sensitivity: epsilon=%g delta=%g beta=%g\n",
             p.epsilon, p.delta, beta);

  SeriesTable& local = out.Table("local_sensitivity");
  SeriesTable& smooth = out.Table("smooth_sensitivity");
  SeriesTable& relative = out.Table("noise_over_triangles");

  Rng rng(p.seed);
  const uint32_t max_k = p.smoke ? 9 : 13;
  for (uint32_t k = 6; k <= max_k; ++k) {
    const Graph g = SampleSkg({0.99, 0.45, 0.25}, k, rng);
    const TriangleSensitivityProfile profile(g);
    out.RecordExactSensitivity(profile.exact());
    const double n = double(g.NumNodes());
    const double ss = profile.SmoothSensitivity(beta);
    const double triangles = double(CountTriangles(g));
    local.Add("skg", n, double(profile.LocalSensitivity()));
    smooth.Add("skg", n, ss);
    if (triangles > 0) {
      relative.Add("skg", n, (2.0 * ss / p.epsilon) / triangles);
    }
  }

  const uint32_t max_authors = p.smoke ? 1024 : 8192;
  for (uint32_t authors = 512; authors <= max_authors; authors *= 2) {
    AffiliationOptions options;
    options.num_authors = authors;
    options.num_papers = (authors * 5) / 8;
    const Graph g = AffiliationGraph(options, rng);
    const TriangleSensitivityProfile profile(g);
    out.RecordExactSensitivity(profile.exact());
    const double ss = profile.SmoothSensitivity(beta);
    const double triangles = double(CountTriangles(g));
    local.Add("coauthorship", double(authors),
              double(profile.LocalSensitivity()));
    smooth.Add("coauthorship", double(authors), ss);
    if (triangles > 0) {
      relative.Add("coauthorship", double(authors),
                   (2.0 * ss / p.epsilon) / triangles);
    }
  }
  return Status::Ok();
}

ScenarioSpec AblationSpec(std::string name, std::string legacy,
                          std::string description) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.legacy_binary = std::move(legacy);
  spec.description = std::move(description);
  return spec;
}

}  // namespace

void RegisterAblationScenarios() {
  {
    ScenarioSpec spec = AblationSpec(
        "epsilon_sweep", "ablation_epsilon_sweep",
        "Ablation: private-estimator utility across an epsilon sweep");
    spec.estimators = {"kronmom", "private"};
    spec.defaults.seed = 42;
    spec.defaults.trials = 5;
    spec.defaults.sweep_epsilons = {0.05, 0.1, 0.2, 0.5, 1.0, 2.0};
    spec.run = RunEpsilonSweep;
    RegisterScenario(std::move(spec));
  }
  {
    ScenarioSpec spec = AblationSpec(
        "feature_route", "ablation_feature_route",
        "Ablation: Algorithm 1 degree route vs direct smooth-sensitivity "
        "route");
    spec.estimators = {"degree-route", "direct-route"};
    spec.defaults.seed = 2718;
    spec.defaults.trials = 8;
    spec.defaults.sweep_epsilons = {0.1, 0.2, 0.5, 1.0, 2.0};
    spec.run = RunFeatureRoute;
    RegisterScenario(std::move(spec));
  }
  {
    ScenarioSpec spec = AblationSpec(
        "model_selection", "ablation_model_selection",
        "Ablation: N1 = 2 vs N1 = 3 initiators (paper section 3.3 claim)");
    for (const DatasetInfo& info : PaperDatasets()) {
      spec.datasets.push_back(info.name);
    }
    spec.estimators = {"kronmom", "kronmom_n"};
    spec.defaults.seed = 31415;
    spec.run = RunModelSelection;
    RegisterScenario(std::move(spec));
  }
  {
    ScenarioSpec spec = AblationSpec(
        "objective_ablation", "ablation_objective",
        "Ablation: the Dist x Norm menu of Equation (2)");
    spec.estimators = {"kronmom"};
    spec.defaults.seed = 99;
    spec.defaults.trials = 5;
    spec.run = RunObjectiveAblation;
    RegisterScenario(std::move(spec));
  }
  {
    ScenarioSpec spec = AblationSpec(
        "postprocess_ablation", "ablation_postprocess",
        "Ablation: Hay et al. constrained-inference post-processing");
    spec.estimators = {"degree-route"};
    spec.defaults.seed = 123;
    spec.defaults.trials = 10;
    spec.defaults.sweep_epsilons = {0.05, 0.1, 0.2, 0.5, 1.0};
    spec.run = RunPostprocessAblation;
    RegisterScenario(std::move(spec));
  }
  {
    ScenarioSpec spec = AblationSpec(
        "smooth_sensitivity", "ablation_smooth_sensitivity",
        "Ablation: smooth sensitivity of the triangle count vs graph size");
    spec.estimators = {"smooth-sensitivity"};
    spec.defaults.seed = 7;
    spec.defaults.epsilon = 0.1;  // the ε/2 share of Algorithm 1 at ε = 0.2
    spec.run = RunSmoothSensitivity;
    RegisterScenario(std::move(spec));
  }
}

void RegisterAllScenarios() {
  static const bool registered = [] {
    RegisterFigureScenarios();
    RegisterTableScenarios();
    RegisterAblationScenarios();
    return true;
  }();
  (void)registered;
}

}  // namespace dpkron
