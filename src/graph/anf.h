// ANF: approximate neighborhood function (Palmer, Gibbons & Faloutsos,
// KDD'02) via Flajolet–Martin sketches — the tool the Kronecker-graphs
// papers themselves used for hop plots on large graphs.
//
// Each node carries `num_trials` FM bitmasks; one synchronous "expand"
// round per hop ORs every node's masks with its neighbors'. After round h
// the masks sketch |{v : dist(u,v) ≤ h}| and N(h) is the sum of the
// per-node estimates.

#ifndef DPKRON_GRAPH_ANF_H_
#define DPKRON_GRAPH_ANF_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/graph/graph_view.h"

namespace dpkron {

struct AnfOptions {
  // Parallel FM trials; the estimate averages lowest-zero-bit positions
  // across trials. 32 gives ~ ±7% typical relative error.
  uint32_t num_trials = 32;
  // Hard cap on rounds (hops). The expansion also stops when every
  // sketch is saturated (no mask changed in a round).
  uint32_t max_hops = 64;
};

// Approximate hop plot; same shape as ExactHopPlot's result.
std::vector<uint64_t> ApproxHopPlot(GraphView graph, Rng& rng,
                                    const AnfOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_GRAPH_ANF_H_
