#include "src/common/table_writer.h"

#include <cstdio>
#include <functional>
#include <string>

#include <gtest/gtest.h>

namespace dpkron {
namespace {

std::string Capture(const std::function<void(std::FILE*)>& write) {
  std::FILE* tmp = std::tmpfile();
  write(tmp);
  std::fflush(tmp);
  std::rewind(tmp);
  std::string out;
  char buf[256];
  size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), tmp)) > 0) {
    out.append(buf, got);
  }
  std::fclose(tmp);
  return out;
}

TEST(SeriesTableTest, EmitsHeaderAndRows) {
  SeriesTable table("exp/test");
  table.Add("original", 1, 10);
  table.Add("private", 2, 20.5);
  const std::string out =
      Capture([&table](std::FILE* f) { table.Print(f); });
  EXPECT_NE(out.find("# experiment\tseries\tx\ty"), std::string::npos);
  EXPECT_NE(out.find("exp/test\toriginal\t1\t10"), std::string::npos);
  EXPECT_NE(out.find("exp/test\tprivate\t2\t20.5"), std::string::npos);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SeriesTableTest, EmptyTableStillPrintsHeader) {
  SeriesTable table("empty");
  const std::string out =
      Capture([&table](std::FILE* f) { table.Print(f); });
  EXPECT_NE(out.find("# experiment"), std::string::npos);
  EXPECT_EQ(table.size(), 0u);
}

TEST(SeriesTableTest, HighPrecisionValuesSurvive) {
  SeriesTable table("precision");
  table.Add("s", 1.0, 1.23456789e-7);
  const std::string out =
      Capture([&table](std::FILE* f) { table.Print(f); });
  EXPECT_NE(out.find("1.23456789e-07"), std::string::npos);
}

TEST(SummaryBlockTest, PrintsTitleAndItems) {
  SummaryBlock block("Table 1 row");
  block.Add("a", 0.999);
  block.Add("dataset", std::string("CA-GrQC"));
  const std::string out =
      Capture([&block](std::FILE* f) { block.Print(f); });
  EXPECT_NE(out.find("== Table 1 row =="), std::string::npos);
  EXPECT_NE(out.find("0.999"), std::string::npos);
  EXPECT_NE(out.find("CA-GrQC"), std::string::npos);
}

}  // namespace
}  // namespace dpkron
