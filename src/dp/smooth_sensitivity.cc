#include "src/dp/smooth_sensitivity.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <tuple>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/common/stat_cache.h"
#include "src/graph/triangles.h"

namespace dpkron {
namespace {

// True iff i and j are within hop distance 2 (adjacent or sharing a
// neighbor).
bool WithinTwoHops(GraphView graph, Graph::NodeId i, Graph::NodeId j) {
  if (graph.HasEdge(i, j)) return true;
  return CommonNeighbors(graph, i, j) > 0;
}

struct FarPair {
  bool found = false;
  uint64_t degree_sum = 0;
};

// Exact max of d_i + d_j over pairs at distance > 2 (found=false if no
// such pair exists). Best-first walk over pairs of the degree-sorted node
// list; the first far pair found has the maximum sum. Sets *exact to
// false (and returns the conservative top-two sum) if `budget`
// pair-inspections are not enough.
FarPair MaxFarPairDegreeSum(GraphView graph, uint64_t budget,
                            bool* exact) {
  const uint32_t n = graph.NumNodes();
  if (n < 2) return {};
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&graph](uint32_t x, uint32_t y) {
    const uint32_t dx = graph.Degree(x), dy = graph.Degree(y);
    return dx != dy ? dx > dy : x < y;
  });
  auto degree_at = [&](uint32_t rank) {
    return uint64_t{graph.Degree(order[rank])};
  };

  // Max-heap over (sum, rank_i, rank_j) with rank_i < rank_j; the frontier
  // invariant (push (i, j+1) always, (i+1, i+2) when j == i+1) visits each
  // pair at most once in non-increasing sum order.
  using Entry = std::tuple<uint64_t, uint32_t, uint32_t>;
  std::priority_queue<Entry> heap;
  heap.emplace(degree_at(0) + degree_at(1), 0u, 1u);
  uint64_t inspected = 0;
  while (!heap.empty()) {
    const auto [sum, i, j] = heap.top();
    heap.pop();
    if (++inspected > budget) {
      *exact = false;
      return {true, degree_at(0) + degree_at(1)};  // conservative bound
    }
    if (!WithinTwoHops(graph, order[i], order[j])) return {true, sum};
    if (j + 1 < n) heap.emplace(degree_at(i) + degree_at(j + 1), i, j + 1);
    if (j == i + 1 && i + 2 < n) {
      heap.emplace(degree_at(i + 1) + degree_at(i + 2), i + 1, i + 2);
    }
  }
  return {};  // diameter ≤ 2: no far pairs at all
}

// Sorts candidates by a desc then b desc and reduces them in place to
// their Pareto frontier (strictly rising b along falling a). Applying
// this per chunk before the global merge is sound — and idempotent —
// because the frontier of a union equals the frontier of the union of
// the parts' frontiers; it is what keeps the final serial sort off the
// critical path (the raw class-1 candidate list is O(Σ_w deg(w)²)).
void ReduceToFrontier(std::vector<std::pair<uint64_t, uint64_t>>* candidates) {
  std::sort(candidates->begin(), candidates->end(),
            [](const auto& x, const auto& y) {
              return x.first != y.first ? x.first > y.first
                                        : x.second > y.second;
            });
  std::vector<std::pair<uint64_t, uint64_t>> frontier;
  uint64_t best_b = 0;
  bool first = true;
  for (const auto& [a, b] : *candidates) {
    if (first || b > best_b) {
      frontier.emplace_back(a, b);
      best_b = b;
      first = false;
    }
  }
  *candidates = std::move(frontier);
}

}  // namespace

TriangleSensitivityProfile::TriangleSensitivityProfile(GraphView graph)
    : num_nodes_(graph.NumNodes()) {
  const uint32_t n = num_nodes_;
  std::vector<std::pair<uint64_t, uint64_t>> candidates;

  if (n >= 2) {
    // Class 1 — exact (a, b) for every pair with a common neighbor,
    // enumerated per source node with a stamped counter (no pair map).
    // Source nodes are chunked across the pool; each worker owns one
    // stamped-counter buffer (candidate values depend only on the graph,
    // so buffer reuse across chunks is harmless), and per-chunk candidate
    // vectors are concatenated in chunk-index order so the final list —
    // and everything downstream — is thread-count invariant.
    constexpr size_t kGrain = 256;
    struct StampedCounters {
      std::vector<uint32_t> common;
      std::vector<uint32_t> stamp;
      std::vector<Graph::NodeId> touched;
      uint32_t current = 0;
    };
    std::vector<StampedCounters> buffers(ParallelThreadCount());
    std::vector<std::vector<std::pair<uint64_t, uint64_t>>> chunk_candidates(
        ParallelChunkCount(n, kGrain));
    ParallelForChunks(n, kGrain, [&](const ParallelChunk& chunk) {
      StampedCounters& buf = buffers[chunk.worker];
      if (buf.stamp.size() != n) {
        // First chunk this worker runs: initialize its buffers here, in
        // the parallel section, and only for workers actually scheduled
        // (pre-zeroing every slot would cost O(threads·N) serially).
        buf.common.assign(n, 0);
        buf.stamp.assign(n, 0);
      }
      auto& out = chunk_candidates[chunk.index];
      for (size_t node = chunk.begin; node < chunk.end; ++node) {
        const Graph::NodeId i = static_cast<Graph::NodeId>(node);
        ++buf.current;
        buf.touched.clear();
        for (Graph::NodeId w : graph.Neighbors(i)) {
          for (Graph::NodeId j : graph.Neighbors(w)) {
            if (j <= i) continue;  // each unordered pair once
            if (buf.stamp[j] != buf.current) {
              buf.stamp[j] = buf.current;
              buf.common[j] = 0;
              buf.touched.push_back(j);
            }
            ++buf.common[j];
          }
        }
        const uint64_t deg_i = graph.Degree(i);
        for (Graph::NodeId j : buf.touched) {
          const uint64_t a = buf.common[j];
          const uint64_t deg_j = graph.Degree(j);
          const uint64_t adjacent = graph.HasEdge(i, j) ? 1 : 0;
          // deg_i + deg_j double-counts the a common neighbors and counts
          // j∈N(i), i∈N(j) when adjacent.
          const uint64_t b = deg_i + deg_j - 2 * a - 2 * adjacent;
          out.emplace_back(a, b);
        }
      }
      // Chunk-local Pareto reduction: shrinks the merge from
      // O(Σ deg²) raw pairs to a handful per chunk, and moves the
      // sort work into the parallel section.
      ReduceToFrontier(&out);
    });
    for (const auto& chunk : chunk_candidates) {
      candidates.insert(candidates.end(), chunk.begin(), chunk.end());
    }

    // Class 2 — every edge: (0, d_u + d_v − 2). For adjacent pairs with
    // common neighbors this candidate is dominated by their exact class-1
    // entry (a shifts the profile up by at least as much as the larger b
    // would); for adjacent pairs without common neighbors it IS the exact
    // value. Either way exactness of the max is preserved.
    graph.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
      candidates.emplace_back(
          0, uint64_t{graph.Degree(u)} + graph.Degree(v) - 2);
    });

    // Class 3 — pairs at distance > 2 have a = 0, b = d_i + d_j exactly.
    // A far pair with degree sum 0 still matters: s flips can build
    // ⌊s/2⌋ common neighbors for it (this is the whole profile of an
    // empty graph).
    const FarPair far = MaxFarPairDegreeSum(graph, /*budget=*/50000, &exact_);
    if (far.found) candidates.emplace_back(0, far.degree_sum);
  }

  // Global Pareto frontier over the (already chunk-reduced) candidates.
  ReduceToFrontier(&candidates);
  frontier_ = std::move(candidates);
}

uint64_t TriangleSensitivityProfile::LocalSensitivityAtDistance(
    uint64_t s) const {
  if (num_nodes_ < 3) return 0;
  const uint64_t cap = num_nodes_ - 2;
  uint64_t best = 0;
  for (const auto& [a, b] : frontier_) {
    const uint64_t raised = a + (s + std::min(s, b)) / 2;
    best = std::max(best, std::min(raised, cap));
    if (best == cap) break;
  }
  return best;
}

double TriangleSensitivityProfile::SmoothSensitivity(double beta) const {
  DPKRON_CHECK_GT(beta, 0.0);
  if (num_nodes_ < 3) return 0.0;
  const uint64_t cap = num_nodes_ - 2;
  double best = 0.0;
  // e^{-βs}·LS^(s) can only decrease once LS^(s) saturates at the cap;
  // LS^(s) grows by at most 1 per step, so the scan is bounded.
  for (uint64_t s = 0;; ++s) {
    const uint64_t ls = LocalSensitivityAtDistance(s);
    best = std::max(best, std::exp(-beta * double(s)) * double(ls));
    if (ls >= cap) break;
    // Even the cap can no longer beat the current best: stop early.
    if (std::exp(-beta * double(s + 1)) * double(cap) <= best) break;
  }
  return best;
}

std::shared_ptr<const TriangleSensitivityProfile>
CachedTriangleSensitivityProfile(GraphView graph) {
  return StatCache::Instance().GetOrComputeDurable<TriangleSensitivityProfile>(
      "triangle_profile",
      CacheKey().Mix(graph.ContentFingerprint()).digest(),
      [&graph] { return TriangleSensitivityProfile(graph); },
      [](const TriangleSensitivityProfile& profile, RecordBuilder& rec) {
        rec.U32(profile.num_nodes()).U32(profile.exact() ? 1 : 0);
        EncodePodVector(rec, profile.frontier());
      },
      [](RecordParser& rec) -> std::optional<TriangleSensitivityProfile> {
        const uint32_t num_nodes = rec.U32();
        const uint32_t exact = rec.U32();
        std::vector<std::pair<uint64_t, uint64_t>> frontier;
        if (!rec.ok() || !DecodePodVector(rec, &frontier)) return std::nullopt;
        return TriangleSensitivityProfile(num_nodes, exact != 0,
                                          std::move(frontier));
      });
}

double SmoothSensitivityTriangles(GraphView graph, double beta) {
  return CachedTriangleSensitivityProfile(graph)->SmoothSensitivity(beta);
}

PrivateTriangleResult PrivateTriangleCount(GraphView graph, double epsilon,
                                           double delta, Rng& rng) {
  DPKRON_CHECK_GT(epsilon, 0.0);
  DPKRON_CHECK_GT(delta, 0.0);
  DPKRON_CHECK_LT(delta, 1.0);
  PrivateTriangleResult result;
  result.beta = epsilon / (2.0 * std::log(2.0 / delta));
  // The profile is the expensive, ε-independent half of the mechanism;
  // evaluating SS_β at this run's β is a cheap scan over its frontier.
  const auto profile = CachedTriangleSensitivityProfile(graph);
  result.smooth_sensitivity = profile->SmoothSensitivity(result.beta);
  result.exact_sensitivity = profile->exact();
  result.exact =
      static_cast<double>(*StatCache::Instance().GetOrComputeDurable<uint64_t>(
          "triangle_count", CacheKey().Mix(graph.ContentFingerprint()).digest(),
          [&graph] { return CountTriangles(graph); },
          [](uint64_t count, RecordBuilder& rec) { rec.U64(count); },
          [](RecordParser& rec) -> std::optional<uint64_t> {
            const uint64_t count = rec.U64();
            if (!rec.ok()) return std::nullopt;
            return count;
          }));
  result.value = result.exact +
                 2.0 * result.smooth_sensitivity / epsilon * rng.NextLaplace(1.0);
  return result;
}

}  // namespace dpkron
