#include "src/dp/smooth_sensitivity.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/graph_builder.h"
#include "src/graph/triangles.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::MakeGraph;
using testing::PathGraph;
using testing::StarGraph;

// ---------------------------------------------------------------------------
// Local sensitivity at distance 0 on known graphs.
// ---------------------------------------------------------------------------

TEST(LocalSensitivityTest, CompleteGraph) {
  // Every pair of K_n has n-2 common neighbors.
  const TriangleSensitivityProfile profile(CompleteGraph(7));
  EXPECT_EQ(profile.LocalSensitivity(), 5u);
}

TEST(LocalSensitivityTest, StarHasOneCommonNeighbor) {
  const TriangleSensitivityProfile profile(StarGraph(8));
  EXPECT_EQ(profile.LocalSensitivity(), 1u);  // two leaves share the center
}

TEST(LocalSensitivityTest, PathPairs) {
  // P4: pairs (0,2) and (1,3) share one neighbor.
  const TriangleSensitivityProfile profile(PathGraph(4));
  EXPECT_EQ(profile.LocalSensitivity(), 1u);
}

TEST(LocalSensitivityTest, EdgelessGraphIsZero) {
  const TriangleSensitivityProfile profile(MakeGraph(6, {}));
  EXPECT_EQ(profile.LocalSensitivity(), 0u);
}

TEST(LocalSensitivityTest, TinyGraphsAreZero) {
  EXPECT_EQ(TriangleSensitivityProfile(MakeGraph(1, {})).LocalSensitivity(),
            0u);
  EXPECT_EQ(TriangleSensitivityProfile(MakeGraph(2, {{0, 1}}))
                .LocalSensitivity(),
            0u);
}

// ---------------------------------------------------------------------------
// Profile properties.
// ---------------------------------------------------------------------------

TEST(ProfileTest, MonotoneInDistanceAndCapped) {
  Rng rng(3);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 7, rng);
  const TriangleSensitivityProfile profile(g);
  uint64_t previous = 0;
  for (uint64_t s = 0; s <= 2 * g.NumNodes(); ++s) {
    const uint64_t ls = profile.LocalSensitivityAtDistance(s);
    EXPECT_GE(ls, previous);
    EXPECT_LE(ls, uint64_t{g.NumNodes()} - 2);
    previous = ls;
  }
  EXPECT_EQ(profile.LocalSensitivityAtDistance(4 * g.NumNodes()),
            uint64_t{g.NumNodes()} - 2);
}

TEST(ProfileTest, EmptyGraphProfileGrowsAtHalfRate) {
  // From the empty graph, s flips build ⌊s/2⌋ common neighbors for a pair.
  const TriangleSensitivityProfile profile(MakeGraph(12, {}));
  for (uint64_t s : {0ull, 1ull, 2ull, 5ull, 9ull}) {
    EXPECT_EQ(profile.LocalSensitivityAtDistance(s), s / 2);
  }
}

TEST(ProfileTest, FrontierIsStrictlyPareto) {
  Rng rng(5);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 7, rng);
  const TriangleSensitivityProfile profile(g);
  const auto& frontier = profile.frontier();
  ASSERT_FALSE(frontier.empty());
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LT(frontier[i].first, frontier[i - 1].first);
    EXPECT_GT(frontier[i].second, frontier[i - 1].second);
  }
}

// ---------------------------------------------------------------------------
// Brute force: LS^(s) must equal the max over all graphs within edit
// distance s of the true local sensitivity. Exhaustive for n = 5, s ≤ 2.
// ---------------------------------------------------------------------------

uint64_t BruteLocalSensitivity(const Graph& g) {
  uint64_t best = 0;
  for (Graph::NodeId i = 0; i < g.NumNodes(); ++i) {
    for (Graph::NodeId j = i + 1; j < g.NumNodes(); ++j) {
      best = std::max(best, uint64_t{CommonNeighbors(g, i, j)});
    }
  }
  return best;
}

Graph FlipEdges(const Graph& g, const std::vector<uint32_t>& flip_pairs) {
  // Pair index p encodes (i, j); flip membership of each listed pair.
  const uint32_t n = g.NumNodes();
  std::vector<std::pair<Graph::NodeId, Graph::NodeId>> pairs;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) pairs.emplace_back(i, j);
  }
  GraphBuilder builder(n);
  for (uint32_t p = 0; p < pairs.size(); ++p) {
    const bool present = g.HasEdge(pairs[p].first, pairs[p].second);
    const bool flipped =
        std::find(flip_pairs.begin(), flip_pairs.end(), p) != flip_pairs.end();
    if (present != flipped) builder.AddEdge(pairs[p].first, pairs[p].second);
  }
  return builder.Build();
}

uint64_t BruteLsAtDistance(const Graph& g, uint32_t s) {
  const uint32_t num_pairs = g.NumNodes() * (g.NumNodes() - 1) / 2;
  uint64_t best = BruteLocalSensitivity(g);
  if (s >= 1) {
    for (uint32_t p = 0; p < num_pairs; ++p) {
      best = std::max(best, BruteLocalSensitivity(FlipEdges(g, {p})));
    }
  }
  if (s >= 2) {
    for (uint32_t p = 0; p < num_pairs; ++p) {
      for (uint32_t q = p + 1; q < num_pairs; ++q) {
        best = std::max(best, BruteLocalSensitivity(FlipEdges(g, {p, q})));
      }
    }
  }
  return best;
}

class ProfileBruteForceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ProfileBruteForceTest, MatchesExhaustiveSearch) {
  // Parameter seeds a random 5-node graph (all 1024 graphs reachable).
  const uint32_t seed = GetParam();
  Rng rng(seed);
  GraphBuilder builder(5);
  for (uint32_t i = 0; i < 5; ++i) {
    for (uint32_t j = i + 1; j < 5; ++j) {
      if (rng.NextBernoulli(0.4)) builder.AddEdge(i, j);
    }
  }
  const Graph g = builder.Build();
  const TriangleSensitivityProfile profile(g);
  ASSERT_TRUE(profile.exact());
  for (uint32_t s = 0; s <= 2; ++s) {
    EXPECT_EQ(profile.LocalSensitivityAtDistance(s), BruteLsAtDistance(g, s))
        << "seed " << seed << " s " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, ProfileBruteForceTest,
                         ::testing::Range(0u, 25u));

// ---------------------------------------------------------------------------
// Smooth sensitivity.
// ---------------------------------------------------------------------------

TEST(SmoothSensitivityTest, FarPairBudgetFallbackIsReportedNotSilent) {
  // A 400-leaf star has diameter 2, so the far-pair search must inspect
  // all ~80k degree-sorted pairs — past its 50k budget — and fall back
  // to the conservative bound. The fallback must be visible both on the
  // profile and through PrivateTriangleCount's result, which is what
  // the scenario engine records into the run JSON (the pre-fix release
  // path dropped the flag on the floor).
  const Graph star = StarGraph(400);
  const TriangleSensitivityProfile profile(star);
  EXPECT_FALSE(profile.exact());

  Rng rng(5);
  const PrivateTriangleResult fallback =
      PrivateTriangleCount(star, 1.0, 0.01, rng);
  EXPECT_FALSE(fallback.exact_sensitivity);

  // A small graph stays exact and says so.
  const PrivateTriangleResult small =
      PrivateTriangleCount(CompleteGraph(10), 1.0, 0.01, rng);
  EXPECT_TRUE(small.exact_sensitivity);
}

TEST(SmoothSensitivityTest, AtLeastLocalSensitivity) {
  Rng rng(7);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 7, rng);
  const TriangleSensitivityProfile profile(g);
  for (double beta : {0.01, 0.05, 0.5}) {
    EXPECT_GE(profile.SmoothSensitivity(beta),
              double(profile.LocalSensitivity()));
  }
}

TEST(SmoothSensitivityTest, DecreasingInBeta) {
  Rng rng(9);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 7, rng);
  const TriangleSensitivityProfile profile(g);
  double previous = 1e300;
  for (double beta : {0.001, 0.01, 0.1, 1.0}) {
    const double ss = profile.SmoothSensitivity(beta);
    EXPECT_LE(ss, previous);
    previous = ss;
  }
}

TEST(SmoothSensitivityTest, LargeBetaApproachesLocalSensitivity) {
  const Graph g = CompleteGraph(10);
  const TriangleSensitivityProfile profile(g);
  // K_10: LS already at the cap n-2 = 8; SS = 8 for any beta.
  EXPECT_NEAR(profile.SmoothSensitivity(10.0), 8.0, 1e-12);
  EXPECT_NEAR(profile.SmoothSensitivity(0.001), 8.0, 1e-12);
}

TEST(SmoothSensitivityTest, EmptyGraphKnownValue) {
  // SS = max_s e^{-βs}·⌊s/2⌋ over s, capped at n−2.
  const uint32_t n = 64;
  const double beta = 0.1;
  const TriangleSensitivityProfile profile(MakeGraph(n, {}));
  double expected = 0.0;
  for (uint64_t s = 0; s <= 2 * n; ++s) {
    expected = std::max(
        expected, std::exp(-beta * double(s)) *
                      double(std::min<uint64_t>(s / 2, n - 2)));
  }
  EXPECT_NEAR(profile.SmoothSensitivity(beta), expected, 1e-12);
}

// The privacy-critical property: SS is β-smooth, i.e. for edge-neighbor
// graphs G, G' we must have SS(G) ≤ e^β · SS(G').
TEST(SmoothSensitivityTest, SmoothnessAcrossRandomNeighbors) {
  Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const Graph g = SampleSkg({0.85, 0.5, 0.3}, 6, rng);  // 64 nodes
    const uint32_t n = g.NumNodes();
    // Flip a random pair.
    const uint32_t i = uint32_t(rng.NextBounded(n));
    uint32_t j = uint32_t(rng.NextBounded(n));
    if (i == j) j = (j + 1) % n;
    GraphBuilder builder(n);
    g.ForEachEdge([&](Graph::NodeId u, Graph::NodeId v) {
      if ((u == std::min(i, j) && v == std::max(i, j))) return;  // remove
      builder.AddEdge(u, v);
    });
    if (!g.HasEdge(i, j)) builder.AddEdge(i, j);  // or add
    const Graph neighbor = builder.Build();

    for (double beta : {0.0167, 0.1, 0.5}) {
      const double ss_g = SmoothSensitivityTriangles(g, beta);
      const double ss_n = SmoothSensitivityTriangles(neighbor, beta);
      EXPECT_LE(ss_g, std::exp(beta) * ss_n + 1e-9) << "beta " << beta;
      EXPECT_LE(ss_n, std::exp(beta) * ss_g + 1e-9) << "beta " << beta;
    }
  }
}

// ---------------------------------------------------------------------------
// Private triangle count.
// ---------------------------------------------------------------------------

TEST(PrivateTriangleCountTest, CentersOnTrueCount) {
  Rng graph_rng(13);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 8, graph_rng);
  const double truth = double(CountTriangles(g));
  Rng rng(17);
  double sum = 0.0;
  const int runs = 400;
  for (int r = 0; r < runs; ++r) {
    sum += PrivateTriangleCount(g, 1.0, 0.01, rng).value;
  }
  const PrivateTriangleResult one = PrivateTriangleCount(g, 1.0, 0.01, rng);
  const double noise_sd = 2.0 * one.smooth_sensitivity / 1.0 * std::sqrt(2.0);
  EXPECT_NEAR(sum / runs, truth, 5 * noise_sd / std::sqrt(double(runs)));
}

TEST(PrivateTriangleCountTest, BetaMatchesTheorem) {
  Rng rng(19);
  const Graph g = testing::CompleteGraph(16);
  const auto result = PrivateTriangleCount(g, 0.1, 0.01, rng);
  EXPECT_NEAR(result.beta, 0.1 / (2 * std::log(2.0 / 0.01)), 1e-12);
  EXPECT_EQ(result.exact, 560.0);  // C(16,3)
}

TEST(PrivateTriangleCountTest, MoreNoiseAtSmallerEpsilon) {
  Rng rng(23);
  const Graph g = SampleSkg({0.9, 0.5, 0.3}, 7, rng);
  double spread_small = 0.0, spread_large = 0.0;
  const double truth = double(CountTriangles(g));
  for (int r = 0; r < 50; ++r) {
    spread_small +=
        std::fabs(PrivateTriangleCount(g, 0.05, 0.01, rng).value - truth);
    spread_large +=
        std::fabs(PrivateTriangleCount(g, 5.0, 0.01, rng).value - truth);
  }
  EXPECT_GT(spread_small, 3 * spread_large);
}

}  // namespace
}  // namespace dpkron
