#include "src/graph/graph_io.h"

#include <chrono>
#include <thread>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/env.h"
#include "src/common/fnv.h"
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/graph/degree.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

// Restores the ambient pool width on scope exit (thread-sweep tests).
class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedThreads() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

bool SameCsr(const Graph& a, const Graph& b) {
  return std::vector<uint32_t>(a.Offsets().begin(), a.Offsets().end()) ==
             std::vector<uint32_t>(b.Offsets().begin(), b.Offsets().end()) &&
         std::vector<uint32_t>(a.Adjacency().begin(), a.Adjacency().end()) ==
             std::vector<uint32_t>(b.Adjacency().begin(), b.Adjacency().end());
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out << bytes;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(GraphIoTest, ParsesSimpleEdgeList) {
  const auto result = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumNodes(), 3u);
  EXPECT_EQ(result.value().NumEdges(), 3u);
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  const auto result = ParseEdgeList(
      "# SNAP header\n# Nodes: 3 Edges: 2\n\n0\t1\n\n  # inline\n1\t2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 2u);
}

TEST(GraphIoTest, DensifiesSparseIds) {
  const auto result = ParseEdgeList("1000 2000\n2000 500\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumNodes(), 3u);
  EXPECT_EQ(result.value().NumEdges(), 2u);
}

TEST(GraphIoTest, DeduplicatesAndDropsLoops) {
  const auto result = ParseEdgeList("0 1\n1 0\n5 5\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 1u);
  EXPECT_EQ(result.value().NumNodes(), 3u);  // nodes 0, 1, 5 all interned
}

TEST(GraphIoTest, RejectsMalformedLine) {
  const auto result = ParseEdgeList("0 1\nnot numbers\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find(":2"), std::string::npos);
}

TEST(GraphIoTest, EmptyInputGivesEmptyGraph) {
  const auto result = ParseEdgeList("# only comments\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumNodes(), 0u);
}

TEST(GraphIoTest, ReadMissingFileFails) {
  const auto result = ReadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(GraphIoTest, WriteReadRoundTrip) {
  const Graph g = testing::PetersenGraph();
  const std::string path = TempPath("petersen.txt");
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  // The reader renumbers by first appearance, so compare isomorphism-
  // safe invariants rather than literal edge lists.
  EXPECT_EQ(back.value().NumNodes(), g.NumNodes());
  EXPECT_EQ(back.value().NumEdges(), g.NumEdges());
  EXPECT_EQ(SortedDegreeVector(back.value()), SortedDegreeVector(g));
  std::remove(path.c_str());
}

TEST(GraphIoTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(WriteEdgeList(Graph(), "/nonexistent/dir/out.txt").ok());
}

// ---------------------- SNAP-file hardening regressions ----------------------

TEST(GraphIoHardeningTest, CrlfLineEndings) {
  const auto result = ParseEdgeList("# header\r\n0\t1\r\n1\t2\r\n\r\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().NumNodes(), 3u);
  EXPECT_EQ(result.value().NumEdges(), 2u);
}

TEST(GraphIoHardeningTest, TabsAndMultipleSpaces) {
  const auto result = ParseEdgeList("0\t\t1\n1   2\n  3 \t 4  \n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().NumEdges(), 3u);
}

TEST(GraphIoHardeningTest, TrailingBlankLines) {
  const auto result = ParseEdgeList("0 1\n\n\n\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 1u);
}

TEST(GraphIoHardeningTest, NoTrailingNewline) {
  const auto result = ParseEdgeList("0 1\n1 2");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 2u);
}

TEST(GraphIoHardeningTest, NodeIdOverflowReportsLine) {
  // 2^64 = 18446744073709551616 does not fit uint64.
  const auto result = ParseEdgeList("0 1\n3 18446744073709551616\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find(":2"), std::string::npos);
  EXPECT_NE(result.status().message().find("overflow"), std::string::npos);
  // The maximum uint64 id itself is fine.
  EXPECT_TRUE(ParseEdgeList("0 18446744073709551615\n").ok());
}

TEST(GraphIoHardeningTest, NegativeIdRejectedWithLine) {
  const auto result = ParseEdgeList("# header\n0 1\n2 -7\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":3"), std::string::npos);
}

TEST(GraphIoHardeningTest, TrailingGarbageRejected) {
  const auto result = ParseEdgeList("0 1 2\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":1"), std::string::npos);
  EXPECT_NE(result.status().message().find("trailing"), std::string::npos);
}

TEST(GraphIoHardeningTest, MissingSecondFieldRejected) {
  const auto result = ParseEdgeList("0 1\n42\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":2"), std::string::npos);
}

TEST(GraphIoHardeningTest, LineNumbersCountCommentsAndCrlf) {
  const auto result = ParseEdgeList("# one\r\n\r\n3 4\r\nbad line\r\n");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find(":4"), std::string::npos);
}

TEST(GraphIoHardeningTest, SerialParserAgreesOnErrors) {
  const char* inputs[] = {"0 1 2\n", "x y\n", "1 99999999999999999999999\n"};
  for (const char* input : inputs) {
    const auto parallel = ParseEdgeList(input);
    const auto serial = ParseEdgeListSerial(input);
    ASSERT_FALSE(parallel.ok());
    ASSERT_FALSE(serial.ok());
    EXPECT_EQ(parallel.status().ToString(), serial.status().ToString());
  }
}

// --------------------- parallel parser determinism ---------------------

// A few hundred KB of mixed-content edge list with sparse ids.
std::string MessyEdgeListText() {
  Rng rng(123);
  std::string text = "# generated fixture\r\n";
  char line[64];
  for (int i = 0; i < 40000; ++i) {
    const unsigned long long u = rng.NextBounded(5000) * 911 + 3;
    const unsigned long long v = rng.NextBounded(5000) * 911 + 3;
    const int style = static_cast<int>(rng.NextBounded(5));
    switch (style) {
      case 0:
        std::snprintf(line, sizeof(line), "%llu\t%llu\n", u, v);
        break;
      case 1:
        std::snprintf(line, sizeof(line), "%llu  %llu\r\n", u, v);
        break;
      case 2:
        std::snprintf(line, sizeof(line), "  %llu %llu  \n", u, v);
        break;
      case 3:
        std::snprintf(line, sizeof(line), "# comment %d\n", i);
        break;
      default:
        std::snprintf(line, sizeof(line), "%llu\t%llu\n\n", u, v);
        break;
    }
    text += line;
  }
  return text;
}

TEST(ParallelParseTest, BitIdenticalToSerialAcrossThreadCounts) {
  const std::string text = MessyEdgeListText();
  const auto serial = ParseEdgeListSerial(text);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();

  EdgeListParseOptions options;
  options.chunk_bytes = 4096;  // hundreds of chunks over this input
  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ScopedThreads scope(threads);
    const auto parallel = ParseEdgeList(text, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    EXPECT_TRUE(SameCsr(parallel.value(), serial.value()));
  }
}

TEST(ParallelParseTest, ChunkBoundariesNeverSplitSemantics) {
  // Every chunk size from 1 byte up must agree with the serial parse —
  // boundaries land inside lines, on '\r', on '\n', everywhere.
  const std::string text =
      "# c\r\n10 20\r\n\r\n30 40\n  50\t60\n# tail\n70 80";
  const auto serial = ParseEdgeListSerial(text);
  ASSERT_TRUE(serial.ok());
  for (size_t chunk_bytes = 1; chunk_bytes <= text.size(); ++chunk_bytes) {
    EdgeListParseOptions options;
    options.chunk_bytes = chunk_bytes;
    const auto parallel = ParseEdgeList(text, options);
    ASSERT_TRUE(parallel.ok()) << "chunk_bytes=" << chunk_bytes;
    EXPECT_TRUE(SameCsr(parallel.value(), serial.value()))
        << "chunk_bytes=" << chunk_bytes;
  }
}

TEST(ParallelParseTest, FirstAppearanceDensificationOrderPreserved) {
  // 500 appears first, then 100, then 7: dense ids must be 0, 1, 2 in
  // that order even when chunk 2 parses "7" before chunk 1 finishes.
  EdgeListParseOptions options;
  options.chunk_bytes = 4;
  const auto g = ParseEdgeList("500 100\n7 500\n", options);
  ASSERT_TRUE(g.ok());
  // Node 0 (=500) has neighbors {1 (=100), 2 (=7)}.
  ASSERT_EQ(g.value().NumNodes(), 3u);
  EXPECT_EQ(g.value().Degree(0), 2u);
  EXPECT_TRUE(g.value().HasEdge(0, 1));
  EXPECT_TRUE(g.value().HasEdge(0, 2));
  EXPECT_FALSE(g.value().HasEdge(1, 2));
}

// --------------------------- binary (.dpkb) ---------------------------

TEST(BinaryGraphTest, RoundTripsBitIdenticalCsr) {
  const Graph graphs[] = {
      testing::PetersenGraph(),
      Graph(),                                  // empty graph
      testing::MakeGraph(5, {{0, 1}}),          // isolated trailing nodes
      testing::StarGraph(50),
      testing::MakeGraph(1, {}),                // single isolated node
  };
  for (const Graph& g : graphs) {
    const std::string path = TempPath("roundtrip.dpkb");
    ASSERT_TRUE(WriteBinaryGraph(g, path).ok());
    const auto back = ReadBinaryGraph(path);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(SameCsr(back.value(), g));
    EXPECT_EQ(back.value().NumNodes(), g.NumNodes());
    std::remove(path.c_str());
  }
}

TEST(BinaryGraphTest, MissingFileIsNotFound) {
  const auto result = ReadBinaryGraph("/nonexistent/graph.dpkb");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(BinaryGraphTest, RejectsBadMagicVersionTruncationAndCorruption) {
  const std::string path = TempPath("corrupt.dpkb");
  ASSERT_TRUE(WriteBinaryGraph(testing::PetersenGraph(), path).ok());
  const std::string good = ReadFile(path);

  // Bad magic.
  std::string bad = good;
  bad[0] = 'X';
  WriteFile(path, bad);
  auto result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("magic"), std::string::npos);

  // Unsupported version.
  bad = good;
  bad[8] = 99;
  WriteFile(path, bad);
  result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("version"), std::string::npos);

  // Truncated payload.
  WriteFile(path, good.substr(0, good.size() - 5));
  result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // Flipped payload byte → checksum mismatch.
  bad = good;
  bad[good.size() - 1] ^= 0x40;
  WriteFile(path, bad);
  result = ReadBinaryGraph(path);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("checksum"), std::string::npos);

  std::remove(path.c_str());
}

// ----------------------------- sidecar cache -----------------------------

TEST(EdgeListCacheTest, ParseOnceThenHit) {
  const std::string path = TempPath("cached.edges");
  WriteFile(path, "# g\n0 1\n1 2\n2 0\n");
  const std::string cache = BinaryCachePath(path);
  std::remove(cache.c_str());

  bool hit = true;
  const auto first = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(hit);  // first load parses the text
  EXPECT_TRUE(std::filesystem::exists(cache));

  const auto second = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(hit);  // second load served from the sidecar
  EXPECT_TRUE(SameCsr(first.value(), second.value()));

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(EdgeListCacheTest, StaleCacheIsRebuilt) {
  const std::string path = TempPath("stale.edges");
  const std::string cache = BinaryCachePath(path);
  WriteFile(path, "0 1\n");
  bool hit = false;
  ASSERT_TRUE(ReadEdgeListCached(path, &hit).ok());

  // New source content; force the sidecar visibly older than the
  // source (filesystem timestamps can be too coarse to rely on).
  WriteFile(path, "0 1\n1 2\n");
  std::filesystem::last_write_time(
      cache,
      std::filesystem::last_write_time(path) - std::chrono::seconds(10));

  const auto refreshed = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(refreshed.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(refreshed.value().NumEdges(), 2u);

  // The rebuild rewrote the sidecar: next load hits it.
  const auto again = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_EQ(again.value().NumEdges(), 2u);

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(EdgeListCacheTest, MtimePreservingSourceReplacementDetected) {
  // cp -p / rsync -t style replacement: new content whose timestamp is
  // OLDER than the sidecar. The recorded source size catches it.
  const std::string path = TempPath("preserved.edges");
  const std::string cache = BinaryCachePath(path);
  WriteFile(path, "0 1\n");
  bool hit = false;
  ASSERT_TRUE(ReadEdgeListCached(path, &hit).ok());

  WriteFile(path, "0 1\n1 2\n2 3\n");
  std::filesystem::last_write_time(
      path,
      std::filesystem::last_write_time(cache) - std::chrono::seconds(10));

  const auto replaced = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(replaced.ok());
  EXPECT_FALSE(hit);
  EXPECT_EQ(replaced.value().NumEdges(), 3u);

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(EdgeListCacheTest, SameSizeSameSecondRewriteDetected) {
  // THE staleness hole the content checksum closes: the source is
  // rewritten with the same byte count and a timestamp the filesystem
  // cannot distinguish from the cache write's. Every mtime/size
  // heuristic passes; only the recorded source checksum can tell the
  // contents apart. The mtimes are pinned equal to make the worst case
  // deterministic rather than racing the clock granularity.
  const std::string path = TempPath("same_size.edges");
  const std::string cache = BinaryCachePath(path);
  WriteFile(path, "0 1\n0 2\n");
  bool hit = false;
  ASSERT_TRUE(ReadEdgeListCached(path, &hit).ok());

  WriteFile(path, "0 1\n0 3\n");  // same size, different content
  std::filesystem::last_write_time(path,
                                   std::filesystem::last_write_time(cache));

  const auto rewritten = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(rewritten.ok());
  EXPECT_FALSE(hit);
  // Nodes 0, 1, 3 — the "3" proves the new content was parsed.
  EXPECT_EQ(rewritten.value().NumNodes(), 3u);
  EXPECT_EQ(rewritten.value().NumEdges(), 2u);
  EXPECT_EQ(rewritten.value().Degree(0), 2u);

  // The rebuilt sidecar serves the new content from now on.
  const auto again = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(hit);
  EXPECT_TRUE(SameCsr(again.value(), rewritten.value()));

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(EdgeListCacheTest, OldVersionSidecarReparsedSilently) {
  // A version-1 sidecar (48-byte header, no source checksum) left over
  // from before the format bump: the version check must classify it as
  // stale — silent reparse + v2 rewrite — and never misload it.
  const std::string path = TempPath("old_version.edges");
  const std::string cache = BinaryCachePath(path);
  const std::string text = "0 1\n1 2\n";
  WriteFile(path, text);

  // Craft a faithful v1 file for the parsed graph: magic, version 1,
  // counts, payload checksum (any value — the version check fires
  // first), recorded source size, then the CSR payload.
  const auto graph = ParseEdgeListSerial(text);
  ASSERT_TRUE(graph.ok());
  {
    std::ofstream out(cache, std::ios::binary);
    const char magic[8] = {'D', 'P', 'K', 'B', 'C', 'S', 'R', '1'};
    const uint32_t version = 1, reserved = 0;
    const uint64_t num_nodes = graph.value().NumNodes();
    const uint64_t adjacency_len = graph.value().Adjacency().size();
    const uint64_t checksum = 0, source_size = text.size();
    out.write(magic, sizeof(magic));
    out.write(reinterpret_cast<const char*>(&version), sizeof(version));
    out.write(reinterpret_cast<const char*>(&reserved), sizeof(reserved));
    out.write(reinterpret_cast<const char*>(&num_nodes), sizeof(num_nodes));
    out.write(reinterpret_cast<const char*>(&adjacency_len),
              sizeof(adjacency_len));
    out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
    out.write(reinterpret_cast<const char*>(&source_size),
              sizeof(source_size));
    out.write(reinterpret_cast<const char*>(graph.value().Offsets().data()),
              static_cast<std::streamsize>(
                  graph.value().Offsets().size_bytes()));
    out.write(reinterpret_cast<const char*>(graph.value().Adjacency().data()),
              static_cast<std::streamsize>(
                  graph.value().Adjacency().size_bytes()));
  }
  const auto direct = ReadBinaryGraph(cache);
  ASSERT_FALSE(direct.ok());
  EXPECT_NE(direct.status().message().find("version"), std::string::npos);

  bool hit = true;
  const auto result = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_TRUE(SameCsr(result.value(), graph.value()));

  // The sidecar was upgraded in place: a v2 load now succeeds and hits.
  EXPECT_TRUE(ReadBinaryGraph(cache).ok());
  const auto upgraded = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(upgraded.ok());
  EXPECT_TRUE(hit);

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(BinaryGraphTest, SourceStampRoundTrips) {
  const std::string path = TempPath("stamped.dpkb");
  const DpkbSourceStamp stamp{123, 0xDEADBEEFCAFEF00DULL};
  ASSERT_TRUE(WriteBinaryGraph(testing::PetersenGraph(), path, stamp).ok());
  DpkbSourceStamp back;
  ASSERT_TRUE(ReadBinaryGraph(path, &back).ok());
  EXPECT_EQ(back.size, stamp.size);
  EXPECT_EQ(back.checksum, stamp.checksum);
  std::remove(path.c_str());
}

TEST(EdgeListCacheTest, CorruptCacheFallsBackToParse) {
  const std::string path = TempPath("corrupt_cache.edges");
  const std::string cache = BinaryCachePath(path);
  WriteFile(path, "0 1\n1 2\n");
  WriteFile(cache, "garbage, not a dpkb file");
  std::filesystem::last_write_time(
      cache,
      std::filesystem::last_write_time(path) + std::chrono::seconds(10));

  bool hit = true;
  const auto result = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_EQ(result.value().NumEdges(), 2u);

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(EdgeListCacheTest, MissingSourceFailsEvenWithCache) {
  const std::string path = TempPath("deleted.edges");
  WriteFile(path, "0 1\n");
  bool hit = false;
  ASSERT_TRUE(ReadEdgeListCached(path, &hit).ok());
  std::remove(path.c_str());
  const auto result = ReadEdgeListCached(path, &hit);
  EXPECT_FALSE(result.ok());
  std::remove(BinaryCachePath(path).c_str());
}

// ------------------- full ingestion round-trip property -------------------

// Edge list ↔ Graph ↔ binary: serial parse, parallel parse (2 and 8
// threads), a binary round-trip and a cache reload must all produce
// bit-identical CSR arrays.
TEST(IngestionRoundTripTest, AllRoutesProduceIdenticalCsr) {
  const std::string inputs[] = {
      "",                                       // empty
      "# only\r\n# comments\n",                 // no edges at all
      "1000000 2\n2 999999999999\n7 1000000\n", // sparse 64-bit ids
      MessyEdgeListText(),                      // big mixed fixture
  };
  int case_index = 0;
  for (const std::string& text : inputs) {
    SCOPED_TRACE(case_index++);
    const auto serial = ParseEdgeListSerial(text);
    ASSERT_TRUE(serial.ok());
    const Graph& reference = serial.value();

    EdgeListParseOptions options;
    options.chunk_bytes = 512;
    for (int threads : {2, 8}) {
      ScopedThreads scope(threads);
      const auto parallel = ParseEdgeList(text, options);
      ASSERT_TRUE(parallel.ok());
      EXPECT_TRUE(SameCsr(parallel.value(), reference));
    }

    const std::string path = TempPath("roundtrip_prop.edges");
    WriteFile(path, text);
    const std::string cache = BinaryCachePath(path);
    std::remove(cache.c_str());
    bool hit = false;
    const auto parsed = ReadEdgeListCached(path, &hit);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(hit);
    EXPECT_TRUE(SameCsr(parsed.value(), reference));
    const auto reloaded = ReadEdgeListCached(path, &hit);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_TRUE(hit);
    EXPECT_TRUE(SameCsr(reloaded.value(), reference));
    std::remove(path.c_str());
    std::remove(cache.c_str());
  }
}

// ------------------------- cache-reload speedup -------------------------

// The acceptance gate for the binary cache: reloading a ≥1M-edge graph
// from the .dpkb sidecar must be ≥10× faster than the text parse it
// replaces (≥3× in unoptimized/sanitizer builds, where the relative
// cost of the two paths shifts).
TEST(IngestionPerfTest, BinaryCacheReloadBeatsTextParse) {
  Rng rng(2024);
  const uint32_t n = 1u << 18;
  std::string text = "# perf fixture\n";
  text.reserve(18u << 20);
  char line[48];
  size_t edges = 0;
  while (edges < 1'050'000) {
    const uint64_t u = rng.NextBounded(n);
    const uint64_t v = rng.NextBounded(n);
    if (u == v) continue;
    std::snprintf(line, sizeof(line), "%llu\t%llu\n",
                  static_cast<unsigned long long>(u * 31 + 1),
                  static_cast<unsigned long long>(v * 31 + 1));
    text += line;
    ++edges;
  }
  const std::string path = TempPath("perf.edges");
  WriteFile(path, text);
  const std::string cache = BinaryCachePath(path);
  std::remove(cache.c_str());

  using Clock = std::chrono::steady_clock;
  auto start = Clock::now();
  bool hit = true;
  const auto parsed = ReadEdgeListCached(path, &hit);
  const double parse_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  ASSERT_TRUE(parsed.ok());
  ASSERT_FALSE(hit);
  ASSERT_GE(parsed.value().NumEdges(), 1'000'000u);

  // Best of three reloads: the gate measures the cache path itself,
  // not scheduler noise.
  double reload_seconds = 1e9;
  for (int i = 0; i < 3; ++i) {
    start = Clock::now();
    const auto reloaded = ReadEdgeListCached(path, &hit);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    ASSERT_TRUE(reloaded.ok());
    ASSERT_TRUE(hit);
    ASSERT_EQ(reloaded.value().NumEdges(), parsed.value().NumEdges());
    reload_seconds = std::min(reload_seconds, seconds);
  }

#ifdef NDEBUG
  const double required_speedup = 10.0;
#else
  const double required_speedup = 3.0;
#endif
  EXPECT_GE(parse_seconds / reload_seconds, required_speedup)
      << "text parse " << parse_seconds << "s, cache reload "
      << reload_seconds << "s";

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

// ---------------------------------------------- fault-injected I/O

TEST(EdgeListCacheTest, SidecarWriteFailureDegradesToWarningPlusParse) {
  // ENOSPC while writing the .dpkb sidecar must not fail a load whose
  // parse already succeeded: warn, serve the in-memory graph, and leave
  // no half-written cache behind for the next load to trust.
  const std::string path = TempPath("cache_enospc.edges");
  WriteFile(path, "# g\n0 1\n1 2\n2 0\n");
  const std::string cache = BinaryCachePath(path);
  std::remove(cache.c_str());

  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  env.FailWrites(/*after=*/1,
                 Status::ResourceExhausted("No space left on device"));
  bool hit = true;
  const auto parsed = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_EQ(parsed.value().NumNodes(), 3u);
  EXPECT_EQ(parsed.value().NumEdges(), 3u);
  // The failed write cleaned up: no sidecar, no stray temp file.
  EXPECT_FALSE(std::filesystem::exists(cache));

  // Once space is back the next load parses again AND rebuilds the
  // sidecar, so the one after that is a cache hit.
  env.ClearFaults();
  const auto rebuilt = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_FALSE(hit);
  EXPECT_TRUE(std::filesystem::exists(cache));
  const auto served = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(hit);
  EXPECT_TRUE(SameCsr(parsed.value(), served.value()));

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(EdgeListCacheTest, SidecarSurvivesCrashRightAfterWrite) {
  // WriteBinaryGraph syncs the temp file BEFORE renaming it into place,
  // so a kill -9 immediately after a cached load leaves a valid sidecar
  // — never the renamed-but-empty file rename-without-fsync produces.
  const std::string path = TempPath("cache_crash.edges");
  {
    // Written through the REAL env: the source file predates the
    // "process" whose crash we simulate.
    WriteFile(path, "# g\n0 1\n1 2\n2 0\n");
  }
  const std::string cache = BinaryCachePath(path);
  std::remove(cache.c_str());

  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  bool hit = true;
  ASSERT_TRUE(ReadEdgeListCached(path, &hit).ok());
  EXPECT_FALSE(hit);
  ASSERT_TRUE(std::filesystem::exists(cache));

  env.DropUnsyncedData();  // kill -9 + power cut

  const auto recovered = ReadBinaryGraph(cache);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  const auto cached = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(hit);  // the surviving sidecar serves the load
  EXPECT_TRUE(SameCsr(recovered.value(), cached.value()));

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(GraphIoTest, WriteEdgeListIsAtomicUnderCrash) {
  // WriteEdgeList goes through WriteFileDurable: after a crash the
  // destination either does not exist or holds the complete file.
  const std::string path = TempPath("atomic_write.edges");
  std::remove(path.c_str());
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  ASSERT_TRUE(WriteEdgeList(testing::PathGraph(4), path).ok());
  env.DropUnsyncedData();
  const auto reloaded = ReadEdgeList(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded.value().NumNodes(), 4u);
  EXPECT_EQ(reloaded.value().NumEdges(), 3u);
  std::remove(path.c_str());
}

// ------------------------------------------- sidecar rebuild locking

TEST(SidecarLockTest, RebuildLockIsTakenAndRemovedAroundParse) {
  const std::string path = TempPath("lock_normal.edges");
  WriteFile(path, "# lock_normal\n0 1\n1 2\n");
  const std::string cache = BinaryCachePath(path);
  const std::string lock = cache + ".lock";
  std::remove(cache.c_str());
  std::remove(lock.c_str());

  bool hit = true;
  const auto loaded = ReadEdgeListCached(path, &hit);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(hit);
  EXPECT_TRUE(std::filesystem::exists(cache));
  // The advisory lock must not outlive the rebuild it guarded.
  EXPECT_FALSE(std::filesystem::exists(lock));

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(SidecarLockTest, WaiterServesSidecarInstalledByLockHolder) {
  const std::string path = TempPath("lock_wait.edges");
  const std::string text = "# lock_wait\n0 1\n1 2\n2 3\n";
  WriteFile(path, text);
  const std::string cache = BinaryCachePath(path);
  const std::string lock = cache + ".lock";
  std::remove(cache.c_str());

  // Another process "holds" the rebuild lock...
  WriteFile(lock, "");
  // ...and, while this loader polls, installs the sidecar (atomic
  // rename) and releases. Install-before-release is the protocol.
  std::thread winner([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    const auto parsed = ParseEdgeList(text);
    ASSERT_TRUE(parsed.ok());
    const DpkbSourceStamp stamp{text.size(),
                                Fnv1a64Words(text.data(), text.size())};
    ASSERT_TRUE(WriteBinaryGraph(parsed.value(), cache, stamp).ok());
    std::remove(lock.c_str());
  });

  EdgeListParseOptions options;
  options.lock_poll_ms = 5;
  options.lock_stale_ms = 10000;  // far beyond the winner's 60ms
  bool hit = false;
  const auto loaded = ReadEdgeListCached(path, &hit, options);
  winner.join();
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // The waiter was served by the winner's sidecar — one parse total,
  // which is the point of the lock.
  EXPECT_TRUE(hit);
  EXPECT_FALSE(std::filesystem::exists(lock));

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

TEST(SidecarLockTest, OrphanedLockIsBrokenAfterStaleTimeout) {
  const std::string path = TempPath("lock_stale.edges");
  WriteFile(path, "# lock_stale\n0 1\n1 2\n");
  const std::string cache = BinaryCachePath(path);
  const std::string lock = cache + ".lock";
  std::remove(cache.c_str());

  // A crashed holder left its lock behind; nobody will ever release it.
  WriteFile(lock, "");

  EdgeListParseOptions options;
  options.lock_poll_ms = 2;
  options.lock_stale_ms = 30;
  bool hit = true;
  const auto loaded = ReadEdgeListCached(path, &hit, options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_FALSE(hit);  // the takeover parsed the text itself
  EXPECT_EQ(loaded.value().NumEdges(), 2u);
  EXPECT_TRUE(std::filesystem::exists(cache));   // and rebuilt the cache
  EXPECT_FALSE(std::filesystem::exists(lock));   // and cleaned up

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

}  // namespace
}  // namespace dpkron
