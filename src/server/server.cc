#include "src/server/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <utility>

#include "src/common/stat_cache.h"
#include "src/common/table_writer.h"
#include "src/core/scenario.h"
#include "src/scenarios/scenarios.h"

namespace dpkron {
namespace {

// A connection that streams bytes without newlines is buffered at most
// this far before being refused — the per-connection memory bound that
// complements the admission queue's request bound.
constexpr size_t kMaxLineBytes = 1 << 20;

// Budget refusals cross the wire as RESOURCE_EXHAUSTED: the accountant
// reports kFailedPrecondition (an invariant of the ledger), but to a
// client "this analyst's budget cannot admit this charge" is a spent
// resource — and crucially NOT retryable-as-is (IsRetryableStatusCode),
// so well-behaved clients stop hammering a ledger that cannot say yes.
Status MapBudgetStatus(const Status& status, const std::string& analyst) {
  if (status.code() == StatusCode::kFailedPrecondition) {
    return Status::ResourceExhausted("privacy budget exhausted for analyst '" +
                                     analyst + "': " + status.message());
  }
  return status;
}

}  // namespace

DpkronServer::DpkronServer(const ServerConfig& config)
    : config_(config),
      clock_(config.clock != nullptr ? config.clock : Clock::System()),
      queue_(config.queue_depth) {}

Result<std::unique_ptr<DpkronServer>> DpkronServer::Create(
    const ServerConfig& config) {
  if (config.accountant_path.empty()) {
    return Status::InvalidArgument("server needs an accountant journal path");
  }
  if (config.workers < 1) {
    return Status::InvalidArgument("server needs at least one worker");
  }
  RegisterAllScenarios();
  auto accountant = PrivacyAccountant::Open(
      config.accountant_path, config.epsilon_budget, config.delta_budget,
      GetEnv(), config.compact_threshold);
  if (!accountant.ok()) return accountant.status();
  std::unique_ptr<DpkronServer> server(new DpkronServer(config));
  server->accountant_ = std::move(accountant).value();
  // The deterministic half of every request memoizes through the
  // process-wide StatCache: repeated (scenario, dataset, ε, seed)
  // requests — retries above all — recompute nothing.
  StatCache::Instance().set_enabled(true);
  if (!config.disk_cache_path.empty()) {
    // Fail startup, not requests: a server told to persist its cache
    // but unable to create the root is misconfigured.
    DiskCache::Options disk_options;
    disk_options.byte_budget = config.disk_cache_budget;
    const Status attached = StatCache::Instance().AttachDiskTier(
        config.disk_cache_path, disk_options);
    if (!attached.ok()) return attached;
  }
  if (config.cache_mem_budget > 0) {
    StatCache::Instance().set_byte_budget(config.cache_mem_budget);
  }
  return server;
}

DpkronServer::~DpkronServer() { Drain(); }

void DpkronServer::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!workers_.empty() || draining_.load()) return;
  workers_.reserve(config_.workers);
  for (int i = 0; i < config_.workers; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

Status DpkronServer::Submit(const ReleaseRequest& request,
                            ResponseCallback done) {
  if (request.type == RequestType::kHealthz) {
    // Health bypasses the queue by design: the gauges must be readable
    // exactly when the queue is full or the server is draining.
    done(HealthzJson());
    return Status::Ok();
  }
  QueuedRequest task;
  task.request = request;
  task.deadline_at_ms = request.deadline_ms > 0
                            ? clock_->NowMillis() + request.deadline_ms
                            : -1;
  task.done = std::move(done);
  const Status admitted = queue_.TryPush(std::move(task));
  if (admitted.ok()) {
    accepted_.fetch_add(1, std::memory_order_relaxed);
  } else if (admitted.code() == StatusCode::kResourceExhausted) {
    shed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    drain_refused_.fetch_add(1, std::memory_order_relaxed);
  }
  return admitted;
}

std::string DpkronServer::HandleLine(std::string_view line) {
  auto parsed = ParseRequestLine(line);
  if (!parsed.ok()) return ErrorResponseJson("", parsed.status());
  const ReleaseRequest& request = parsed.value();
  if (request.type == RequestType::kHealthz) return HealthzJson();

  // Blocking bridge: admission is asynchronous, a connection is not.
  struct Waiter {
    std::mutex mu;
    std::condition_variable cv;
    std::string response;
    bool done = false;
  };
  auto waiter = std::make_shared<Waiter>();
  const Status admitted = Submit(request, [waiter](std::string response) {
    {
      std::lock_guard<std::mutex> lock(waiter->mu);
      waiter->response = std::move(response);
      waiter->done = true;
    }
    waiter->cv.notify_one();
  });
  if (!admitted.ok()) {
    const int64_t retry_after =
        admitted.code() == StatusCode::kResourceExhausted
            ? config_.shed_retry_after_ms
            : -1;
    return ErrorResponseJson(request.request_id, admitted, retry_after);
  }
  std::unique_lock<std::mutex> lock(waiter->mu);
  waiter->cv.wait(lock, [&waiter] { return waiter->done; });
  return waiter->response;
}

void DpkronServer::WorkerMain() {
  QueuedRequest task;
  while (queue_.Pop(&task)) {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    std::string response = Process(task);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    task.done(std::move(response));
    task.done = nullptr;
  }
}

Status DpkronServer::CheckDeadline(const QueuedRequest& task,
                                   const char* checkpoint) {
  if (task.deadline_at_ms < 0) return Status::Ok();
  const int64_t now = clock_->NowMillis();
  if (now <= task.deadline_at_ms) return Status::Ok();
  return Status::DeadlineExceeded(
      std::string("deadline exceeded at ") + checkpoint + " (" +
      std::to_string(now - task.deadline_at_ms) + "ms past)");
}

std::string DpkronServer::Process(const QueuedRequest& task) {
  const ReleaseRequest& request = task.request;

  // Checkpoint 1 — dequeue: a request that aged out while queued is
  // answered without computing anything or spending anything.
  Status deadline = CheckDeadline(task, "dequeue");
  if (!deadline.ok()) {
    deadline_missed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponseJson(request.request_id, deadline);
  }

  const ScenarioSpec* spec = FindScenario(request.scenario);
  if (spec == nullptr) {
    return ErrorResponseJson(
        request.request_id,
        Status::NotFound("unknown scenario '" + request.scenario + "'"));
  }

  // Pre-check the budget so a hopeless request fails before the
  // expensive compute — EXCEPT for a request_id already charged: its
  // retry must be acknowledged even from an exhausted budget (the first
  // attempt paid; see PrivacyAccountant::SpendOnce).
  const bool seen = accountant_->SeenRequest(request.request_id);
  if (!seen) {
    const Status precheck = accountant_->CheckSpend(
        request.analyst, request.epsilon, spec->defaults.delta);
    if (!precheck.ok()) {
      budget_refused_.fetch_add(1, std::memory_order_relaxed);
      return ErrorResponseJson(request.request_id,
                               MapBudgetStatus(precheck, request.analyst));
    }
  }

  // Compute — the deterministic half, StatCache-amortized.
  ScenarioOverrides overrides;
  overrides.epsilon = request.epsilon;
  if (request.seed.has_value()) overrides.seed = *request.seed;
  overrides.smoke = config_.smoke;
  if (config_.kronfit_iterations > 0) {
    overrides.kronfit_iterations = config_.kronfit_iterations;
  }
  if (!request.dataset.empty()) {
    overrides.dataset = request.dataset;
    overrides.dataset_cache = config_.dataset_cache;
    overrides.dataset_mmap = config_.dataset_mmap;
  }
  ScenarioOutput output(request.scenario, /*text_out=*/nullptr);
  const Status ran = RunScenario(*spec, overrides, output);
  if (!ran.ok()) return ErrorResponseJson(request.request_id, ran);

  // Checkpoint 2 — pre-spend: past-deadline work is discarded WITHOUT
  // charging. The client has (by its own declaration) stopped waiting;
  // spending ε for an answer nobody consumes would leak budget.
  deadline = CheckDeadline(task, "pre-spend");
  if (!deadline.ok()) {
    deadline_missed_.fetch_add(1, std::memory_order_relaxed);
    return ErrorResponseJson(request.request_id, deadline);
  }

  // Spend — the one irreversible step: journal, fsync, apply, ack.
  const double epsilon = output.params().epsilon;
  const double delta = output.params().delta;
  bool deduped = false;
  const Status spent = accountant_->SpendOnce(
      request.analyst, epsilon, delta,
      request.scenario +
          (request.dataset.empty() ? "" : "@" + request.dataset),
      request.request_id, &deduped);
  if (!spent.ok()) {
    if (spent.code() == StatusCode::kFailedPrecondition) {
      budget_refused_.fetch_add(1, std::memory_order_relaxed);
    }
    return ErrorResponseJson(request.request_id,
                             MapBudgetStatus(spent, request.analyst));
  }
  if (deduped) deduped_.fetch_add(1, std::memory_order_relaxed);
  ok_.fetch_add(1, std::memory_order_relaxed);
  return SuccessResponseJson(task, epsilon, delta, deduped, output);
}

std::string DpkronServer::SuccessResponseJson(
    const QueuedRequest& task, double epsilon, double delta, bool deduped,
    const ScenarioOutput& output) const {
  JsonWriter json;
  json.BeginObject();
  json.Key("request_id");
  json.String(task.request.request_id);
  json.Key("ok");
  json.Bool(true);
  json.Key("code");
  json.String("OK");
  json.Key("analyst");
  json.String(task.request.analyst);
  json.Key("deduped");
  json.Bool(deduped);
  json.Key("charge");
  json.BeginObject();
  json.Key("epsilon");
  json.Number(epsilon);
  json.Key("delta");
  json.Number(delta);
  json.EndObject();
  json.Key("budget");
  json.BeginObject();
  json.Key("epsilon_spent");
  json.Number(accountant_->epsilon_spent(task.request.analyst));
  json.Key("epsilon_remaining");
  json.Number(accountant_->epsilon_remaining(task.request.analyst));
  json.Key("delta_spent");
  json.Number(accountant_->delta_spent(task.request.analyst));
  json.EndObject();
  json.Key("run");
  output.AppendRunJson(json);
  json.EndObject();
  return json.str();
}

std::string DpkronServer::HealthzJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("ok");
  json.Bool(true);
  json.Key("code");
  json.String("OK");
  json.Key("type");
  json.String("healthz");
  json.Key("draining");
  json.Bool(draining_.load(std::memory_order_relaxed));
  json.Key("queue_depth");
  json.UInt(queue_.size());
  json.Key("queue_capacity");
  json.UInt(queue_.capacity());
  json.Key("in_flight");
  json.Int(in_flight_.load(std::memory_order_relaxed));
  json.Key("workers");
  json.Int(config_.workers);
  const ServerStats stats = this->stats();
  json.Key("stats");
  json.BeginObject();
  json.Key("accepted");
  json.UInt(stats.accepted);
  json.Key("shed");
  json.UInt(stats.shed);
  json.Key("drain_refused");
  json.UInt(stats.drain_refused);
  json.Key("completed");
  json.UInt(stats.completed);
  json.Key("ok");
  json.UInt(stats.ok);
  json.Key("deadline_missed");
  json.UInt(stats.deadline_missed);
  json.Key("budget_refused");
  json.UInt(stats.budget_refused);
  json.Key("deduped");
  json.UInt(stats.deduped);
  json.EndObject();
  json.Key("budget");
  json.BeginObject();
  json.Key("epsilon_total");
  json.Number(accountant_->epsilon_total());
  json.Key("delta_total");
  json.Number(accountant_->delta_total());
  json.EndObject();
  json.Key("analysts");
  json.BeginObject();
  for (const std::string& analyst : accountant_->analysts()) {
    json.Key(analyst);
    json.BeginObject();
    json.Key("epsilon_spent");
    json.Number(accountant_->epsilon_spent(analyst));
    json.Key("epsilon_remaining");
    json.Number(accountant_->epsilon_remaining(analyst));
    json.Key("delta_spent");
    json.Number(accountant_->delta_spent(analyst));
    json.EndObject();
  }
  json.EndObject();
  json.Key("cache");
  AppendStatCacheJson(json, StatCache::Instance().enabled());
  json.EndObject();
  return json.str();
}

ServerStats DpkronServer::stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.drain_refused = drain_refused_.load(std::memory_order_relaxed);
  stats.completed = completed_.load(std::memory_order_relaxed);
  stats.ok = ok_.load(std::memory_order_relaxed);
  stats.deadline_missed = deadline_missed_.load(std::memory_order_relaxed);
  stats.budget_refused = budget_refused_.load(std::memory_order_relaxed);
  stats.deduped = deduped_.load(std::memory_order_relaxed);
  return stats;
}

void DpkronServer::Drain() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  draining_.store(true, std::memory_order_relaxed);
  queue_.Close();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  CloseConnections();
  // The journal is fsynced per spend; nothing further to flush. The
  // accountant stays open so post-drain healthz keeps reporting.
}

// ---------------------------------------------------------- TCP layer

Status DpkronServer::Listen(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket", errno);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = ErrnoStatus("bind", errno);
    ::close(fd);
    return status;
  }
  if (::listen(fd, 128) != 0) {
    const Status status = ErrnoStatus("listen", errno);
    ::close(fd);
    return status;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  }
  listen_fd_ = fd;
  return Status::Ok();
}

void DpkronServer::AcceptLoop(const std::atomic<bool>* stop) {
  while (listen_fd_ >= 0) {
    if ((stop != nullptr && stop->load(std::memory_order_relaxed)) ||
        draining_.load(std::memory_order_relaxed)) {
      break;
    }
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal — re-check the stop flag
      break;
    }
    if (ready == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    // Reap finished connections so a long-lived daemon serving many
    // short connections does not accumulate joinable threads.
    for (size_t i = 0; i < conns_.size();) {
      if (conns_[i]->done.load(std::memory_order_acquire)) {
        conns_[i]->thread.join();
        ::close(conns_[i]->fd);
        conns_.erase(conns_.begin() + i);
      } else {
        ++i;
      }
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conns_.push_back(conn);
    conn->thread = std::thread([this, conn] { ServeConnection(conn.get()); });
  }
}

void DpkronServer::ServeConnection(Connection* conn) {
  const int fd = conn->fd;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    buffer.append(chunk, static_cast<size_t>(n));
    size_t newline;
    while (open && (newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (line.empty()) continue;
      const std::string response = HandleLine(line) + "\n";
      size_t sent = 0;
      while (sent < response.size()) {
        const ssize_t wrote =
            ::write(fd, response.data() + sent, response.size() - sent);
        if (wrote < 0 && errno == EINTR) continue;
        if (wrote <= 0) {
          open = false;
          break;
        }
        sent += static_cast<size_t>(wrote);
      }
    }
    if (buffer.size() > kMaxLineBytes) {
      // A newline-free flood is refused, not buffered without bound.
      const std::string refusal =
          ErrorResponseJson(
              "", Status::InvalidArgument("request line exceeds 1MiB")) +
          "\n";
      (void)!::write(fd, refusal.data(), refusal.size());
      break;
    }
  }
  // shutdown only — the fd is closed by whoever JOINS this thread
  // (the accept loop's reap or CloseConnections), so a concurrent
  // shutdown from Drain can never hit a recycled fd number.
  ::shutdown(fd, SHUT_RDWR);
  conn->done.store(true, std::memory_order_release);
}

void DpkronServer::CloseConnections() {
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conns_);
  }
  // shutdown() unblocks any read a connection thread is parked in; the
  // fd stays open (shutdown-not-close) until after the join below, so
  // no call here can ever land on a recycled fd number.
  for (const auto& conn : conns) ::shutdown(conn->fd, SHUT_RDWR);
  for (const auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace dpkron
