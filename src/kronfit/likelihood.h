// Approximate SKG log-likelihood and its gradient (Leskovec–Faloutsos).
//
// For an observed undirected graph G aligned to Kronecker ids by σ, the
// exact log-likelihood under our unordered-pair convention is
//   l(Θ, σ) = Σ_{{u,v}∈E} log P_σ(u)σ(v) + Σ_{{u,v}∉E} log(1 − P_σ(u)σ(v)).
// Evaluating the second sum costs O(N²); KronFit's trick is the Taylor
// expansion log(1−p) ≈ −p − p²/2 whose sum over *all* pairs has a closed
// form under the Kronecker structure (and is independent of σ), plus a
// per-edge correction:
//   l ≈ Σ_{E} [log P + P + P²/2] − C(Θ),
//   C(Θ) = ½[(a+2b+c)^k − (a+c)^k] + ¼[(a²+2b²+c²)^k − (a²+c²)^k].
// Both C and the edge terms have cheap analytic (a,b,c)-gradients.

#ifndef DPKRON_KRONFIT_LIKELIHOOD_H_
#define DPKRON_KRONFIT_LIKELIHOOD_H_

#include <array>
#include <cstdint>

#include "src/graph/graph.h"
#include "src/kronfit/permutation.h"
#include "src/skg/initiator.h"
#include "src/skg/kronecker.h"

namespace dpkron {

// Gradient with respect to (a, b, c).
using Gradient3 = std::array<double, 3>;

// Evaluator bound to one (Θ, k); rebuild when Θ changes (cheap: three pow
// tables).
class KronFitLikelihood {
 public:
  // theta entries are clamped to [kThetaFloor, 1] internally so that
  // log P stays finite.
  KronFitLikelihood(const Initiator2& theta, uint32_t k);

  static constexpr double kThetaFloor = 1e-9;

  uint32_t k() const { return k_; }
  const Initiator2& theta() const { return theta_; }

  // Per-edge contribution for Kronecker positions (p, q):
  // log P_pq + P_pq + P_pq²/2.
  double EdgeTerm(uint32_t p, uint32_t q) const;

  // Closed-form no-edge mass C(Θ) (σ-independent).
  double NoEdgeTerm() const;
  Gradient3 NoEdgeGradient() const;

  // Full approximate log-likelihood of `graph` under alignment σ.
  double LogLikelihood(const Graph& graph, const PermutationState& sigma) const;

  // Change in Σ_E EdgeTerm if nodes u and v exchanged positions; O(deg u +
  // deg v). (The no-edge term does not move.) `sigma` is the state
  // *before* the swap.
  double SwapDelta(const Graph& graph, const PermutationState& sigma,
                   uint32_t u, uint32_t v) const;

  // ∇_(a,b,c) Σ_E EdgeTerm at alignment σ. Combined with NoEdgeGradient()
  // this is the full likelihood gradient.
  Gradient3 EdgeGradient(const Graph& graph,
                         const PermutationState& sigma) const;

 private:
  // (n00, nb, n11) digit-pair counts for positions (p, q).
  std::array<uint32_t, 3> DigitCounts(uint32_t p, uint32_t q) const;

  Initiator2 theta_;
  uint32_t k_;
  EdgeProbability2 prob_;
};

}  // namespace dpkron

#endif  // DPKRON_KRONFIT_LIKELIHOOD_H_
