#include "src/estimation/objective.h"

#include <cmath>

#include "src/common/macros.h"
#include "src/skg/moments.h"

namespace dpkron {
namespace {

// Norms can vanish (e.g. a candidate with no expected triangles); floor
// the denominator so a term contributes a large-but-finite cost instead of
// an infinity that would wedge the simplex.
constexpr double kNormFloor = 1e-9;

double Dist(DistKind kind, double x, double y) {
  switch (kind) {
    case DistKind::kSquared:
      return (x - y) * (x - y);
    case DistKind::kAbsolute:
      return std::fabs(x - y);
  }
  return 0.0;
}

double Norm(NormKind kind, double observed, double expected) {
  switch (kind) {
    case NormKind::kF:
      return observed;
    case NormKind::kF2:
      return observed * observed;
    case NormKind::kE:
      return expected;
    case NormKind::kE2:
      return expected * expected;
  }
  return 1.0;
}

double Term(const ObjectiveOptions& options, double observed,
            double expected) {
  const double numerator = Dist(options.dist, observed, expected);
  const double denominator =
      std::max(std::fabs(Norm(options.norm, observed, expected)), kNormFloor);
  return numerator / denominator;
}

}  // namespace

const char* DistKindName(DistKind dist) {
  switch (dist) {
    case DistKind::kSquared:
      return "DistSq";
    case DistKind::kAbsolute:
      return "DistAbs";
  }
  return "?";
}

const char* NormKindName(NormKind norm) {
  switch (norm) {
    case NormKind::kF:
      return "NormF";
    case NormKind::kF2:
      return "NormF2";
    case NormKind::kE:
      return "NormE";
    case NormKind::kE2:
      return "NormE2";
  }
  return "?";
}

double MomentObjective(const Initiator2& theta, uint32_t k,
                       const GraphFeatures& observed,
                       const ObjectiveOptions& options) {
  DPKRON_CHECK_GE(k, 1u);
  const Initiator2 inside = theta.Clamped();
  // Quadratic penalty for leaving the box, scaled to dominate any
  // in-box objective value.
  const double overshoot = std::fabs(theta.a - inside.a) +
                           std::fabs(theta.b - inside.b) +
                           std::fabs(theta.c - inside.c);
  const double penalty = 1e6 * overshoot * overshoot + 1e3 * overshoot;

  const SkgMoments expected = ExpectedMoments(inside, k);
  double value = 0.0;
  if (options.use_edges) {
    value += Term(options, observed.edges, expected.edges);
  }
  if (options.use_hairpins) {
    value += Term(options, observed.hairpins, expected.hairpins);
  }
  if (options.use_triangles) {
    value += Term(options, observed.triangles, expected.triangles);
  }
  if (options.use_tripins) {
    value += Term(options, observed.tripins, expected.tripins);
  }
  return value + penalty;
}

}  // namespace dpkron
