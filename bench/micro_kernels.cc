// Google-benchmark microbenchmarks for the computational kernels behind
// the experiments: graph statistics, SKG sampling, moment evaluation,
// the DP mechanisms, and the spectral solver.

#include <benchmark/benchmark.h>

#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/dp/degree_sequence.h"
#include "src/dp/isotonic.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/estimation/kronmom.h"
#include "src/graph/anf.h"
#include "src/graph/clustering.h"
#include "src/graph/triangles.h"
#include "src/linalg/lanczos.h"
#include "src/skg/moments.h"
#include "src/skg/sampler.h"

namespace {

using namespace dpkron;

const Graph& TestGraph(uint32_t k) {
  static Rng rng(1);
  static const Graph& g10 = *new Graph(SampleSkg({0.99, 0.55, 0.35}, 10, rng));
  static const Graph& g12 = *new Graph(SampleSkg({0.99, 0.55, 0.35}, 12, rng));
  return k == 10 ? g10 : g12;
}

void BM_SampleSkgExact(benchmark::State& state) {
  Rng rng(2);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng));
  }
}
BENCHMARK(BM_SampleSkgExact)->Arg(8)->Arg(10)->Arg(12);

void BM_SampleSkgBallDrop(benchmark::State& state) {
  Rng rng(3);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kBallDrop;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng, options));
  }
}
BENCHMARK(BM_SampleSkgBallDrop)->Arg(10)->Arg(12)->Arg(14);

void BM_SampleSkgClassSkip(benchmark::State& state) {
  Rng rng(8);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kClassSkip;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng, options));
  }
}
BENCHMARK(BM_SampleSkgClassSkip)->Arg(10)->Arg(12)->Arg(14)->Arg(16);

void BM_SampleSkgEdgeSkip(benchmark::State& state) {
  Rng rng(9);
  const uint32_t k = static_cast<uint32_t>(state.range(0));
  SkgSampleOptions options;
  options.method = SkgSampleMethod::kEdgeSkip;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleSkg({0.99, 0.45, 0.25}, k, rng, options));
  }
}
BENCHMARK(BM_SampleSkgEdgeSkip)->Arg(10)->Arg(14)->Arg(17)->Arg(20)
    ->Unit(benchmark::kMillisecond);

// Pins the pool width for the duration of one benchmark run and restores
// the ambient width afterwards (other benchmarks use the default).
class ScopedBenchThreads {
 public:
  explicit ScopedBenchThreads(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedBenchThreads() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

// Thread-scaling curves for the two heaviest statistics kernels on the
// k=12 graph — the perf-trajectory series CI archives as BENCH_micro.json.
void BM_Triangles(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
}
BENCHMARK(BM_Triangles)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Anf(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  ScopedBenchThreads threads(static_cast<int>(state.range(0)));
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxHopPlot(g, rng));
  }
}
BENCHMARK(BM_Anf)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_CountTriangles(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangles(g));
  }
}
BENCHMARK(BM_CountTriangles)->Arg(10)->Arg(12);

void BM_ClusteringByDegree(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ClusteringByDegree(g));
  }
}
BENCHMARK(BM_ClusteringByDegree);

void BM_ExpectedMoments(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExpectedMoments({0.99, 0.45, 0.25}, 14));
  }
}
BENCHMARK(BM_ExpectedMoments);

void BM_FitKronMom(benchmark::State& state) {
  const GraphFeatures observed =
      FromMoments(ExpectedMoments({0.99, 0.45, 0.25}, 14));
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitKronMomToFeatures(observed, 14));
  }
}
BENCHMARK(BM_FitKronMom);

void BM_IsotonicRegression(benchmark::State& state) {
  Rng rng(4);
  std::vector<double> values(state.range(0));
  for (double& v : values) v = rng.NextGaussian() * 10;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsotonicRegression(values));
  }
}
BENCHMARK(BM_IsotonicRegression)->Arg(1 << 12)->Arg(1 << 16);

void BM_PrivateDegreeSequence(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PrivateDegreeSequence(g, 0.1, rng));
  }
}
BENCHMARK(BM_PrivateDegreeSequence);

void BM_TriangleSensitivityProfile(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TriangleSensitivityProfile(g));
  }
}
BENCHMARK(BM_TriangleSensitivityProfile)->Arg(10)->Arg(12);

void BM_SmoothSensitivityEvaluation(benchmark::State& state) {
  const TriangleSensitivityProfile& profile =
      *new TriangleSensitivityProfile(TestGraph(12));
  for (auto _ : state) {
    benchmark::DoNotOptimize(profile.SmoothSensitivity(0.0167));
  }
}
BENCHMARK(BM_SmoothSensitivityEvaluation);

void BM_Lanczos50(benchmark::State& state) {
  const Graph& g = TestGraph(static_cast<uint32_t>(state.range(0)));
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TopSingularValues(g, 50, rng));
  }
}
BENCHMARK(BM_Lanczos50)->Arg(10)->Arg(12);

void BM_ApproxHopPlot(benchmark::State& state) {
  const Graph& g = TestGraph(12);
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApproxHopPlot(g, rng));
  }
}
BENCHMARK(BM_ApproxHopPlot);

}  // namespace

BENCHMARK_MAIN();
