#include "src/common/simd.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace dpkron {
namespace simd_internal {

std::atomic<int> g_active{-1};

namespace {

// Cap storage: -1 = "not yet initialized from the environment".
std::atomic<int> g_cap{-1};

int DetectLevel() {
#if defined(__x86_64__) || defined(__i386__)
  if (__builtin_cpu_supports("avx2") && Avx2KernelsCompiled()) {
    return static_cast<int>(SimdLevel::kAvx2);
  }
  if (__builtin_cpu_supports("popcnt")) {
    return static_cast<int>(SimdLevel::kPopcnt);
  }
#endif
  return static_cast<int>(SimdLevel::kScalar);
}

int CapOrInit() {
  int cap = g_cap.load(std::memory_order_relaxed);
  if (cap < 0) {
    // First use: honor DPKRON_FORCE_SCALAR (any value other than empty
    // or "0" forces the scalar path), else no ceiling.
    const char* force = std::getenv("DPKRON_FORCE_SCALAR");
    cap = (force != nullptr && force[0] != '\0' &&
           std::strcmp(force, "0") != 0)
              ? static_cast<int>(SimdLevel::kScalar)
              : static_cast<int>(SimdLevel::kAvx2);
    g_cap.store(cap, std::memory_order_relaxed);
  }
  return cap;
}

}  // namespace

SimdLevel InitActiveSimdLevel() {
  const int detected = DetectLevel();
  const int cap = CapOrInit();
  const int active = detected < cap ? detected : cap;
  g_active.store(active, std::memory_order_relaxed);
  return static_cast<SimdLevel>(active);
}

}  // namespace simd_internal

SimdLevel DetectedSimdLevel() {
  static const SimdLevel detected =
      static_cast<SimdLevel>(simd_internal::DetectLevel());
  return detected;
}

SimdLevel SimdLevelCap() {
  return static_cast<SimdLevel>(simd_internal::CapOrInit());
}

void SetSimdLevelCap(SimdLevel cap) {
  simd_internal::g_cap.store(static_cast<int>(cap),
                             std::memory_order_relaxed);
  // Invalidate the memoized active level; the next ActiveSimdLevel()
  // call recomputes min(detected, cap).
  simd_internal::g_active.store(-1, std::memory_order_relaxed);
  (void)simd_internal::InitActiveSimdLevel();
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kPopcnt:
      return "popcnt";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::string CpuBrandString() {
#if defined(__x86_64__) || defined(__i386__)
  unsigned int max_ext = __get_cpuid_max(0x80000000u, nullptr);
  if (max_ext < 0x80000004u) return "";
  char brand[49] = {};
  unsigned int regs[4];
  for (unsigned int leaf = 0; leaf < 3; ++leaf) {
    __get_cpuid(0x80000002u + leaf, &regs[0], &regs[1], &regs[2], &regs[3]);
    std::memcpy(brand + 16 * leaf, regs, 16);
  }
  // Trim the leading padding spaces some CPUs emit.
  const char* start = brand;
  while (*start == ' ') ++start;
  return start;
#else
  return "";
#endif
}

}  // namespace dpkron
