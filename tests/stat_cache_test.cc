// StatCache: fingerprint stability, key sensitivity, hit/miss counter
// accuracy, RNG-state replay on hits, and — the load-bearing property —
// bit-identical scenario output cached vs. uncached and across thread
// counts.

#include "src/common/stat_cache.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>
#include "src/common/parallel.h"
#include "src/common/rng.h"
#include "src/core/scenario.h"
#include "src/dp/smooth_sensitivity.h"
#include "src/graph/graph_io.h"
#include "src/kronfit/kronfit.h"
#include "src/scenarios/scenarios.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

// Enables a clean cache for one test and restores the disabled default.
class ScopedCache {
 public:
  ScopedCache() {
    StatCache::Instance().Clear();
    StatCache::Instance().set_enabled(true);
  }
  ~ScopedCache() {
    StatCache::Instance().set_enabled(false);
    StatCache::Instance().Clear();
  }
};

class ScopedThreads {
 public:
  explicit ScopedThreads(int threads) : saved_(ParallelThreadCount()) {
    SetParallelThreadCount(threads);
  }
  ~ScopedThreads() { SetParallelThreadCount(saved_); }

 private:
  int saved_;
};

TEST(GraphFingerprintTest, StableAcrossIdenticalCsrAndBuildRoutes) {
  // Two independently built but identical graphs fingerprint equally;
  // the CSR form is canonical, so build route cannot matter.
  const Graph a = testing::MakeGraph(5, {{0, 1}, {1, 2}, {3, 4}});
  const Graph b = testing::MakeGraph(5, {{3, 4}, {1, 2}, {1, 0}, {2, 1}});
  EXPECT_EQ(a.ContentFingerprint(), b.ContentFingerprint());

  // Any structural change — an edge, or only the node count — changes it.
  const Graph c = testing::MakeGraph(5, {{0, 1}, {1, 2}, {2, 4}});
  EXPECT_NE(a.ContentFingerprint(), c.ContentFingerprint());
  const Graph d = testing::MakeGraph(6, {{0, 1}, {1, 2}, {3, 4}});
  EXPECT_NE(a.ContentFingerprint(), d.ContentFingerprint());
}

TEST(CacheKeyTest, FieldOrderAndValuesMatter) {
  EXPECT_EQ(CacheKey().Mix(1).Mix(2).digest(),
            CacheKey().Mix(1).Mix(2).digest());
  EXPECT_NE(CacheKey().Mix(1).Mix(2).digest(),
            CacheKey().Mix(2).Mix(1).digest());
  EXPECT_NE(CacheKey().Mix(1).digest(), CacheKey().Mix(1).Mix(0).digest());
  EXPECT_NE(CacheKey().MixDouble(0.5).digest(),
            CacheKey().MixDouble(0.25).digest());
}

TEST(StatCacheTest, DisabledCacheIsATransparentPassthrough) {
  StatCache::Instance().Clear();
  ASSERT_FALSE(StatCache::Instance().enabled());
  int calls = 0;
  for (int i = 0; i < 3; ++i) {
    const auto value = StatCache::Instance().GetOrCompute<int>(
        "test_domain", 7, [&] { return ++calls; });
    EXPECT_EQ(*value, i + 1);  // recomputed every time
  }
  const auto total = StatCache::Instance().TotalCounters();
  EXPECT_EQ(total.hits, 0u);
  EXPECT_EQ(total.misses, 0u);
}

TEST(StatCacheTest, HitAndMissCountersAreExact) {
  ScopedCache cache;
  int calls = 0;
  auto compute = [&] { return ++calls; };
  EXPECT_EQ(*StatCache::Instance().GetOrCompute<int>("d1", 1, compute), 1);
  EXPECT_EQ(*StatCache::Instance().GetOrCompute<int>("d1", 1, compute), 1);
  EXPECT_EQ(*StatCache::Instance().GetOrCompute<int>("d1", 1, compute), 1);
  EXPECT_EQ(*StatCache::Instance().GetOrCompute<int>("d1", 2, compute), 2);
  // Same key in another domain is a distinct entry.
  EXPECT_EQ(*StatCache::Instance().GetOrCompute<int>("d2", 1, compute), 3);
  EXPECT_EQ(calls, 3);

  const auto total = StatCache::Instance().TotalCounters();
  EXPECT_EQ(total.misses, 3u);
  EXPECT_EQ(total.hits, 2u);
  const auto domains = StatCache::Instance().DomainCounters();
  ASSERT_EQ(domains.size(), 2u);
  EXPECT_EQ(domains[0].first, "d1");
  EXPECT_EQ(domains[0].second.misses, 2u);
  EXPECT_EQ(domains[0].second.hits, 2u);
  EXPECT_EQ(domains[1].first, "d2");
  EXPECT_EQ(domains[1].second.misses, 1u);
  EXPECT_EQ(domains[1].second.hits, 0u);

  StatCache::Instance().Clear();
  EXPECT_EQ(StatCache::Instance().TotalCounters().misses, 0u);
  EXPECT_EQ(*StatCache::Instance().GetOrCompute<int>("d1", 1, compute), 4);
}

TEST(StatCacheTest, CachedProfileIsSharedAndCounted) {
  ScopedCache cache;
  const Graph g = testing::CompleteGraph(8);
  const auto first = CachedTriangleSensitivityProfile(g);
  const auto second = CachedTriangleSensitivityProfile(g);
  EXPECT_EQ(first.get(), second.get());  // same object, not a copy
  EXPECT_EQ(first->LocalSensitivity(), 6u);

  // An equal-content graph hits; a different graph misses.
  const Graph same = testing::CompleteGraph(8);
  EXPECT_EQ(CachedTriangleSensitivityProfile(same).get(), first.get());
  const auto other = CachedTriangleSensitivityProfile(testing::StarGraph(8));
  EXPECT_NE(other.get(), first.get());

  const auto domains = StatCache::Instance().DomainCounters();
  ASSERT_EQ(domains.size(), 1u);
  EXPECT_EQ(domains[0].first, "triangle_profile");
  EXPECT_EQ(domains[0].second.misses, 2u);
  EXPECT_EQ(domains[0].second.hits, 2u);
}

TEST(StatCacheTest, KronFitHitReplaysTheRngStream) {
  // A cached fit must leave the caller's rng exactly where the real fit
  // left it, so everything downstream draws identical values.
  const Graph g = testing::CompleteGraph(32);
  KronFitOptions options;
  options.iterations = 2;

  Rng uncached_rng(42);
  const KronFitResult uncached = FitKronFit(g, uncached_rng, options);
  const uint64_t end_state = uncached_rng.StateFingerprint();

  ScopedCache cache;
  Rng miss_rng(42);
  const KronFitResult miss = FitKronFitCached(g, miss_rng, options);
  Rng hit_rng(42);
  const KronFitResult hit = FitKronFitCached(g, hit_rng, options);

  EXPECT_EQ(StatCache::Instance().TotalCounters().misses, 1u);
  EXPECT_EQ(StatCache::Instance().TotalCounters().hits, 1u);
  for (const KronFitResult* result : {&miss, &hit}) {
    EXPECT_EQ(result->theta.a, uncached.theta.a);
    EXPECT_EQ(result->theta.b, uncached.theta.b);
    EXPECT_EQ(result->theta.c, uncached.theta.c);
    EXPECT_EQ(result->log_likelihood, uncached.log_likelihood);
    EXPECT_EQ(result->k, uncached.k);
  }
  EXPECT_EQ(miss_rng.StateFingerprint(), end_state);
  EXPECT_EQ(hit_rng.StateFingerprint(), end_state);
  // A different seed is a different key, not a wrong hit.
  Rng other_rng(43);
  (void)FitKronFitCached(g, other_rng, options);
  EXPECT_EQ(StatCache::Instance().TotalCounters().misses, 2u);
}

// The load-bearing property behind the sweep engine: a scenario run
// with the cache enabled — cold or warm, at any thread count — emits
// exactly the bytes the uncached path emits.
TEST(StatCacheTest, ScenarioOutputBitIdenticalCachedVsUncachedAndThreads) {
  RegisterAllScenarios();
  const ScenarioSpec* spec = FindScenario("fig2_as20");
  ASSERT_NE(spec, nullptr);
  // A small file-backed dataset keeps the six full scenario runs below
  // affordable under sanitizers.
  const std::string path = ::testing::TempDir() + "/cache_ident_" +
                           std::to_string(::getpid()) + ".edges";
  {
    std::ofstream out(path);
    for (int i = 1; i < 120; ++i) {
      out << 0 << '\t' << i << '\n';
      out << i << '\t' << (i % 11) + 120 << '\n';
    }
  }
  std::remove(BinaryCachePath(path).c_str());
  ScenarioOverrides overrides;
  overrides.smoke = true;
  overrides.kronfit_iterations = 2;
  overrides.dataset = path;
  overrides.dataset_cache = true;

  auto run_json = [&]() {
    ScenarioOutput output(spec->name, /*text_out=*/nullptr);
    const Status status = RunScenario(*spec, overrides, output);
    EXPECT_TRUE(status.ok()) << status.ToString();
    output.set_elapsed_seconds(0.0);  // the only nondeterministic field
    JsonWriter json;
    output.AppendRunJson(json);
    return json.str();
  };

  StatCache::Instance().set_enabled(false);
  StatCache::Instance().Clear();
  const std::string uncached = run_json();

  ScopedCache cache;
  const std::string cold = run_json();   // populates the cache
  const std::string warm = run_json();   // served from it
  EXPECT_GT(StatCache::Instance().TotalCounters().hits, 0u);
  EXPECT_EQ(uncached, cold);
  EXPECT_EQ(uncached, warm);

  for (int threads : {1, 2, 8}) {
    SCOPED_TRACE(threads);
    ScopedThreads scope(threads);
    EXPECT_EQ(run_json(), uncached);
  }
  std::remove(path.c_str());
  std::remove(BinaryCachePath(path).c_str());
}

}  // namespace
}  // namespace dpkron
