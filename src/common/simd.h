// Runtime SIMD dispatch for the vectorized kernels.
//
// The library is compiled for the portable x86-64 baseline (plus the
// guarded -mpopcnt); only the *_avx2.cc translation units are built with
// -mavx2, and they are reached exclusively through the level check below,
// so the binary still runs on pre-AVX2 silicon. The selected level is a
// pure performance choice: every vectorized kernel is bit-identical to
// its scalar reference (fixed reduction order, identical RNG
// consumption), which tests/simd_test.cc enforces across levels and
// thread counts. Forcing a lower level therefore never changes results —
// scenario/sweep documents and privacy ledgers are byte-for-byte the
// same under `DPKRON_FORCE_SCALAR=1`.
//
// Level selection: Active = min(Detected, Cap). Detected probes the CPU
// (and whether the AVX2 TUs were actually compiled with AVX2 — the CMake
// flag probe can fail on exotic toolchains); Cap defaults to the highest
// level, is lowered to scalar by the DPKRON_FORCE_SCALAR environment
// variable (read once, at first use), and is adjustable at runtime with
// SetSimdLevelCap (the --force-scalar flags and the parity tests).

#ifndef DPKRON_COMMON_SIMD_H_
#define DPKRON_COMMON_SIMD_H_

#include <atomic>
#include <string>

namespace dpkron {

// Ordered: a higher level strictly extends the ISA of the lower ones.
// kPopcnt is what the default build's "scalar" C++ actually uses (the
// global guarded -mpopcnt); it is distinguished from kScalar only so the
// recorded dispatch string tells a forced-fallback run from a genuinely
// old CPU.
enum class SimdLevel : int { kScalar = 0, kPopcnt = 1, kAvx2 = 2 };

// Best level this CPU + this build supports. Probed once.
SimdLevel DetectedSimdLevel();

// Current ceiling (default: highest; DPKRON_FORCE_SCALAR lowers it).
SimdLevel SimdLevelCap();
void SetSimdLevelCap(SimdLevel cap);

// "scalar" / "popcnt" / "avx2" — the string recorded in bench/scenario
// context blocks.
const char* SimdLevelName(SimdLevel level);

// CPU brand string via CPUID (e.g. "Intel(R) Xeon(R) ..."), empty when
// unavailable; recorded next to the dispatch level so perf trajectories
// across heterogeneous CI runners stay interpretable.
std::string CpuBrandString();

// RAII cap override for tests and in-process A/B timing.
class ScopedSimdLevelCap {
 public:
  explicit ScopedSimdLevelCap(SimdLevel cap) : saved_(SimdLevelCap()) {
    SetSimdLevelCap(cap);
  }
  ~ScopedSimdLevelCap() { SetSimdLevelCap(saved_); }
  ScopedSimdLevelCap(const ScopedSimdLevelCap&) = delete;
  ScopedSimdLevelCap& operator=(const ScopedSimdLevelCap&) = delete;

 private:
  SimdLevel saved_;
};

namespace simd_internal {
// min(Detected, Cap), memoized; -1 until the first ActiveSimdLevel()
// call. Relaxed atomics: the value is a pure function of (CPU, build,
// cap), so racing initializers publish the same result.
extern std::atomic<int> g_active;
SimdLevel InitActiveSimdLevel();
}  // namespace simd_internal

// The level the dispatched kernels run at: min(Detected, Cap). Inline
// fast path (one relaxed load) — this sits on per-call hot paths like
// SwapDelta.
inline SimdLevel ActiveSimdLevel() {
  const int v = simd_internal::g_active.load(std::memory_order_relaxed);
  if (v >= 0) return static_cast<SimdLevel>(v);
  return simd_internal::InitActiveSimdLevel();
}

inline bool Avx2Active() { return ActiveSimdLevel() >= SimdLevel::kAvx2; }

// Defined in src/common/vec_kernels_avx2.cc: true iff the *_avx2.cc TUs
// were really compiled with AVX2 enabled (the CMake -mavx2 probe can
// fail, in which case those TUs contain only unreachable stubs and
// detection must not select kAvx2).
bool Avx2KernelsCompiled();

}  // namespace dpkron

#endif  // DPKRON_COMMON_SIMD_H_
