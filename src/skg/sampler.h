// Sampling realizations G = R(P) of a stochastic Kronecker graph (§3.2).
//
// Undirected convention (matching the paper's symmetrize-and-drop-loops
// transformation and the Gleich–Owen moment formulas): every unordered
// pair {u, v}, u ≠ v, receives one Bernoulli coin with bias P_uv.
//
// Four samplers:
//   * Exact: flips all N(N−1)/2 coins. O(4^k) time, exact distribution.
//     Practical through k = 14 (~1.3·10^8 coin flips).
//   * BallDrop: the standard fast Kronecker generator (krongen-style
//     recursive quadrant descent). Samples a target edge count from the
//     normal approximation of the Poisson-binomial edge-count law, then
//     places that many distinct edges with probability ∝ P_uv. O(E·k)
//     expected time; the per-pair law is approximate but the aggregate
//     statistics match the exact sampler closely (tested).
//   * ClassSkip: probability-class grass-hopping (class_sampler.h):
//     exact distribution in O(E) expected time, single-threaded.
//   * EdgeSkip: same target-count law as BallDrop, but the balls are
//     split multinomially across Kronecker quadrants level by level,
//     skipping every zero-count / zero-probability region outright and
//     drawing the splits with geometric-skipping binomials
//     (Rng::NextBinomial). Regions are independent once split, so the
//     descent runs on the thread pool with per-region RNG streams and
//     per-region edge batches merged into one CSR. O(E·k) time; the
//     sampler of choice for large k (a k = 20, ~10^6-node, ~10^7-edge
//     realization takes seconds). Output is deterministic for a given
//     seed regardless of thread count.

#ifndef DPKRON_SKG_SAMPLER_H_
#define DPKRON_SKG_SAMPLER_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/graph/graph.h"
#include "src/skg/initiator.h"

namespace dpkron {

enum class SkgSampleMethod {
  // All-pairs Bernoulli sweep: exact distribution, O(4^k).
  kExact,
  // krongen-style recursive quadrant descent: fast, approximate.
  kBallDrop,
  // Probability-class skipping (class_sampler.h): exact distribution in
  // O(E) expected time — the best default for k > 12.
  kClassSkip,
  // Multinomial quadrant splitting with geometric edge skipping:
  // BallDrop's distribution at O(E·k) cost, parallel across regions —
  // the generator for k ≥ 16 / million-node realizations.
  kEdgeSkip,
};

struct SkgSampleOptions {
  SkgSampleMethod method = SkgSampleMethod::kExact;
  // BallDrop: give up on duplicate-avoidance after
  // attempt_factor × target placements (dense corners can make distinct
  // placements scarce).
  double attempt_factor = 30.0;
};

// One realization of the SKG defined by Θ^[k] on 2^k nodes.
Graph SampleSkg(const Initiator2& theta, uint32_t k, Rng& rng,
                const SkgSampleOptions& options = {});

// Exact sampler for a general (possibly asymmetric) N1×N1 initiator: the
// directed stochastic matrix is realized and then symmetrized per §3.2
// (loops dropped, lower triangle kept). Limited to small N1^k.
Graph SampleSkgN(const InitiatorN& theta, uint32_t k, Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_SKG_SAMPLER_H_
