// Derivative-free simplex minimizer (Nelder & Mead, 1965).
//
// The Eq. (2) objective is a smooth rational function of (a, b, c) but its
// derivatives are unwieldy and the landscape has flat valleys near the
// box boundary; Nelder–Mead with a box penalty (built into the objective)
// plus multi-start is what Gleich's reference code effectively does, and
// is robust here.

#ifndef DPKRON_ESTIMATION_NELDER_MEAD_H_
#define DPKRON_ESTIMATION_NELDER_MEAD_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace dpkron {

struct NelderMeadOptions {
  uint32_t max_iterations = 2000;
  // Stop when the simplex's value spread and diameter both drop below
  // these tolerances.
  double value_tolerance = 1e-12;
  double point_tolerance = 1e-10;
  // Initial simplex edge length around the start point.
  double initial_step = 0.1;
  // Standard coefficients.
  double reflection = 1.0;
  double expansion = 2.0;
  double contraction = 0.5;
  double shrink = 0.5;
};

struct NelderMeadResult {
  std::vector<double> point;
  double value = 0.0;
  uint32_t iterations = 0;
  bool converged = false;
};

// Minimizes `objective` starting from `start` (dimension = start.size()).
NelderMeadResult NelderMead(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& start, const NelderMeadOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_ESTIMATION_NELDER_MEAD_H_
