// The Laplace mechanism (Dwork, McSherry, Nissim & Smith — Theorem 4.5 of
// the paper): adding Lap(GS_Q/ε) noise to a query with global sensitivity
// GS_Q gives (ε, 0)-differential privacy.

#ifndef DPKRON_DP_LAPLACE_MECHANISM_H_
#define DPKRON_DP_LAPLACE_MECHANISM_H_

#include <vector>

#include "src/common/rng.h"

namespace dpkron {

// value + Lap(sensitivity/epsilon). Requires sensitivity > 0, epsilon > 0.
double AddLaplaceNoise(double value, double sensitivity, double epsilon,
                       Rng& rng);

// Element-wise noisy copy of `values`, i.i.d. Lap(sensitivity/epsilon) —
// for vector queries whose L1 global sensitivity is `sensitivity`
// (e.g. the sorted degree sequence, GS = 2).
std::vector<double> AddLaplaceNoiseVector(const std::vector<double>& values,
                                          double sensitivity, double epsilon,
                                          Rng& rng);

}  // namespace dpkron

#endif  // DPKRON_DP_LAPLACE_MECHANISM_H_
