// StatCache — a process-wide, content-addressed memo for the expensive
// deterministic quantities an ε/seed sweep recomputes otherwise: degree
// sequences, per-node triangle counts, TriangleSensitivityProfiles,
// KronFit fits, graph features, statistics panels and expected-statistic
// tables. A 5-ε sweep computes each of them once instead of once per ε.
//
// Keying. Entries live in named *domains* (one per computation kind,
// e.g. "kronfit", "triangle_profile") and are addressed by a 64-bit
// FNV-1a digest built with CacheKey over every input the computation is
// a function of: the graph's content fingerprint (identical to its
// .dpkb checksum — see Graph::ContentFingerprint), the computation's
// parameters, and — for randomized computations — the Rng's
// StateFingerprint. Because every cached computation is a pure function
// of its key, a hit is bit-identical to a recomputation, which is what
// keeps cached scenario output byte-identical to the uncached path
// (tests/stat_cache_test.cc enforces it).
//
// Randomized computations additionally store the Rng::State their stream
// reached, and the call-site wrappers (FitKronFitCached,
// ReleasePipeline::Compute) restore it on a hit — so the caller's stream
// advances exactly as if the work had re-run and every downstream draw
// is unchanged.
//
// Concurrency. The cache is shared by all threads (the sweep engine runs
// the run matrix over the thread pool). A miss registers an in-flight
// entry before computing, so concurrent requests for the same key wait
// on the first computation instead of duplicating it; waiting is
// deadlock-free because the compute-dependency graph is a shallow DAG
// (composite entries depend only on leaf entries, which wait on nothing).
//
// The cache is DISABLED by default: library callers and the test suite
// see plain recomputation unless a driver (dpkron_experiments, RunSweep)
// opts in with set_enabled(true). Entries are never evicted — memory
// grows with the number of DISTINCT keys, which includes one-off
// entries (e.g. the statistics of a per-run private sample that no
// later run can reuse). The memo is scoped to a driver process; call
// Clear() between batches to release it.

#ifndef DPKRON_COMMON_STAT_CACHE_H_
#define DPKRON_COMMON_STAT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/fnv.h"
#include "src/common/macros.h"

namespace dpkron {

// Accumulates an FNV-1a digest over the typed fields of a cache key.
// Field order matters (by design: keys are positional, like a struct).
class CacheKey {
 public:
  CacheKey& Mix(uint64_t value) {
    hash_ = Fnv1a64(&value, sizeof(value), hash_);
    return *this;
  }
  CacheKey& MixDouble(double value) {
    // Bit pattern, not value: -0.0 and 0.0 key differently, NaNs key
    // stably — the same criterion GraphStatistics equality uses.
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    return Mix(bits);
  }
  CacheKey& MixBytes(const void* data, size_t len) {
    hash_ = Fnv1a64(&len, sizeof(len), hash_);  // length-prefixed
    hash_ = Fnv1a64(data, len, hash_);
    return *this;
  }

  uint64_t digest() const { return hash_; }

 private:
  uint64_t hash_ = kFnv1aOffsetBasis;
};

class StatCache {
 public:
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  // The one process-wide instance.
  static StatCache& Instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  // The memoized value for (domain, key), computing it with `fn` on the
  // first request. `fn` must be a pure function of the key's inputs
  // (that is the cache contract — see file comment) and must not throw:
  // the codebase is exception-free by policy, and an unwinding compute
  // would otherwise leave a forever-pending in-flight entry that every
  // waiter and future lookup blocks on — so an unwind is converted into
  // the standard precondition abort instead. When the cache is disabled
  // this is a transparent passthrough: `fn` runs every time and no
  // counter moves.
  template <typename T, typename Fn>
  std::shared_ptr<const T> GetOrCompute(const char* domain, uint64_t key,
                                        Fn&& fn) {
    if (!enabled()) return std::make_shared<const T>(fn());
    std::promise<std::shared_ptr<const void>> promise;
    const Lookup lookup =
        LookupOrRegister(domain, key, promise.get_future().share());
    if (!lookup.owner) {
      return std::static_pointer_cast<const T>(lookup.future.get());
    }
    struct FulfillGuard {
      bool fulfilled = false;
      ~FulfillGuard() {
        DPKRON_CHECK_MSG(fulfilled,
                         "StatCache compute function must not throw");
      }
    } guard;
    auto value = std::make_shared<const T>(fn());
    guard.fulfilled = true;
    promise.set_value(value);
    return value;
  }

  // Drops every entry and zeroes all counters.
  void Clear();

  // Hit/miss totals across all domains.
  Counters TotalCounters() const;

  // Per-domain counters, sorted by domain name (stable JSON output).
  std::vector<std::pair<std::string, Counters>> DomainCounters() const;

 private:
  struct Lookup {
    std::shared_future<std::shared_ptr<const void>> future;
    bool owner = false;  // true: the caller must compute and fulfill
  };
  struct Domain {
    std::unordered_map<uint64_t,
                       std::shared_future<std::shared_ptr<const void>>>
        entries;
    Counters counters;
  };

  StatCache() = default;

  Lookup LookupOrRegister(
      const char* domain, uint64_t key,
      std::shared_future<std::shared_ptr<const void>> candidate);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Domain> domains_;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_STAT_CACHE_H_
