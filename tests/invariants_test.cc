// Cross-module property sweeps on randomized graphs: invariants that must
// hold for every graph tie the independent implementations (triangle
// counter vs clustering, hop plot vs components, degree formulas vs
// combinatorial counters, CSR I/O roundtrip, samplers vs each other)
// together. Parameterized over seeds for breadth.

#include <cmath>
#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/clustering.h"
#include "src/graph/components.h"
#include "src/graph/degree.h"
#include "src/graph/extra_stats.h"
#include "src/graph/graph_io.h"
#include "src/graph/hop_plot.h"
#include "src/graph/triangles.h"
#include "src/skg/sampler.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

class GraphInvariantsTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Graph MakeRandomGraph() {
    Rng rng(GetParam());
    // Vary shape with the seed: density and order differ per instance.
    const uint32_t k = 5 + uint32_t(GetParam() % 4);           // 32..256
    const double b = 0.3 + 0.05 * double(GetParam() % 7);      // 0.3..0.6
    return SampleSkg({0.95, b, 0.25}, k, rng);
  }
};

TEST_P(GraphInvariantsTest, HandshakeLemma) {
  const Graph g = MakeRandomGraph();
  uint64_t degree_sum = 0;
  for (Graph::NodeId u = 0; u < g.NumNodes(); ++u) degree_sum += g.Degree(u);
  EXPECT_EQ(degree_sum, 2 * g.NumEdges());
}

TEST_P(GraphInvariantsTest, DegreeFormulasMatchCombinatorialCounts) {
  const Graph g = MakeRandomGraph();
  std::vector<double> degrees;
  for (uint32_t d : DegreeVector(g)) degrees.push_back(d);
  EXPECT_DOUBLE_EQ(EdgesFromDegrees(degrees), double(g.NumEdges()));
  EXPECT_DOUBLE_EQ(HairpinsFromDegrees(degrees), double(CountWedges(g)));
  EXPECT_DOUBLE_EQ(TripinsFromDegrees(degrees), double(CountTripins(g)));
}

TEST_P(GraphInvariantsTest, TriangleBoundsAndConsistency) {
  const Graph g = MakeRandomGraph();
  const uint64_t triangles = CountTriangles(g);
  // 3∆ = Σ per-node participation; ∆ ≤ H/3.
  const auto per_node = PerNodeTriangles(g);
  const uint64_t sum = std::accumulate(per_node.begin(), per_node.end(),
                                       uint64_t{0});
  EXPECT_EQ(sum, 3 * triangles);
  EXPECT_LE(3 * triangles, CountWedges(g));
  // Global clustering in [0, 1].
  const double gc = GlobalClustering(g);
  EXPECT_GE(gc, 0.0);
  EXPECT_LE(gc, 1.0);
}

TEST_P(GraphInvariantsTest, LocalClusteringWithinUnitInterval) {
  const Graph g = MakeRandomGraph();
  for (double c : LocalClustering(g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_P(GraphInvariantsTest, HopPlotSaturatesAtComponentMass) {
  const Graph g = MakeRandomGraph();
  const auto plot = ExactHopPlot(g);
  // N(∞) = Σ_components size², including self-pairs.
  const ComponentInfo info = ConnectedComponents(g);
  uint64_t mass = 0;
  for (uint32_t size : info.sizes) mass += uint64_t{size} * size;
  EXPECT_EQ(plot.back(), mass);
  EXPECT_EQ(plot.front(), g.NumNodes());
}

TEST_P(GraphInvariantsTest, CoreNumbersBelowDegreeAndDegeneracyBound) {
  const Graph g = MakeRandomGraph();
  const auto core = CoreNumbers(g);
  uint32_t degeneracy = 0;
  for (Graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_LE(core[u], g.Degree(u));
    degeneracy = std::max(degeneracy, core[u]);
  }
  // m ≥ edges of a degeneracy-d graph bound: m ≤ d·n.
  EXPECT_LE(g.NumEdges(), uint64_t{degeneracy} * g.NumNodes() + 1);
}

TEST_P(GraphInvariantsTest, EdgeListRoundTripPreservesGraph) {
  const Graph g = MakeRandomGraph();
  // Per-instance file name: `ctest -j` runs each parameterized instance
  // as its own process, and a shared path races write against read.
  const std::string path = ::testing::TempDir() + "/invariant_roundtrip_" +
                           std::to_string(GetParam()) + ".txt";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  // Densification may renumber isolated-node-free graphs identically;
  // compare canonical edge sets after mapping by first appearance: for
  // graphs whose nodes all appear in edges in increasing order this is
  // the identity. Compare sizes plus degree multiset (isomorphism-safe
  // invariants).
  EXPECT_EQ(back.value().NumEdges(), g.NumEdges());
  auto degrees_a = SortedDegreeVector(g);
  auto degrees_b = SortedDegreeVector(back.value());
  // Reader drops isolated nodes; strip zeros before comparing.
  degrees_a.erase(degrees_a.begin(),
                  std::find_if(degrees_a.begin(), degrees_a.end(),
                               [](uint32_t d) { return d > 0; }));
  EXPECT_EQ(degrees_a, degrees_b);
  std::remove(path.c_str());
}

TEST_P(GraphInvariantsTest, TriangleParticipationMassBalance) {
  const Graph g = MakeRandomGraph();
  uint64_t nodes = 0, weighted = 0;
  for (const auto& [t, count] : TriangleParticipation(g)) {
    nodes += count;
    weighted += t * count;
  }
  EXPECT_EQ(nodes, g.NumNodes());
  EXPECT_EQ(weighted, 3 * CountTriangles(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphInvariantsTest,
                         ::testing::Range(uint64_t{0}, uint64_t{20}));

}  // namespace
}  // namespace dpkron
