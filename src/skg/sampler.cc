#include "src/skg/sampler.h"

#include <algorithm>
#include <cmath>

#include "src/common/macros.h"
#include "src/common/parallel.h"
#include "src/graph/graph_builder.h"
#include "src/skg/class_sampler.h"
#include "src/skg/kronecker.h"
#include "src/skg/moments.h"

namespace dpkron {
namespace {

inline uint64_t PackEdgeKey(uint32_t u, uint32_t v) {
  return (uint64_t{std::min(u, v)} << 32) | std::max(u, v);
}

// Normalized quadrant law of a 2×2 initiator, in the fixed digit order
// (bit_u, bit_v) = (0,0), (0,1), (1,0), (1,1). The CDF drives single-ball
// descents; the probabilities drive multinomial splits.
struct QuadrantLaw {
  double q[4];
  double cdf[3];
};

QuadrantLaw MakeQuadrantLaw(const Initiator2& theta) {
  const double sum = theta.EntrySum();
  QuadrantLaw law;
  law.q[0] = theta.a / sum;
  law.q[1] = theta.b / sum;
  law.q[2] = theta.b / sum;
  law.q[3] = theta.c / sum;
  law.cdf[0] = law.q[0];
  law.cdf[1] = law.cdf[0] + law.q[1];
  law.cdf[2] = law.cdf[1] + law.q[2];
  return law;
}

// Both fast generators draw the total edge count from the normal
// approximation of the Poisson-binomial edge-count law: variance
// Σ p(1−p) ≈ mean for the sparse graphs the model targets.
uint64_t DrawTargetEdges(const Initiator2& theta, uint32_t k, Rng& rng) {
  const uint32_t n_bits = k;
  const double n = std::ldexp(1.0, static_cast<int>(n_bits));
  const double mean_edges = ExpectedEdges(theta, k);
  double target = mean_edges +
                  std::sqrt(std::max(mean_edges, 1.0)) * rng.NextGaussian();
  const double max_edges = 0.5 * n * (n - 1.0);
  target = std::min(std::max(target, 0.0), max_edges);
  return static_cast<uint64_t>(std::llround(target));
}

Graph SampleExact2(const Initiator2& theta, uint32_t k, Rng& rng) {
  DPKRON_CHECK_MSG(k <= 14, "exact sampler limited to k <= 14 (O(4^k))");
  const EdgeProbability2 prob(theta, k);
  const uint32_t n = static_cast<uint32_t>(prob.num_nodes());
  GraphBuilder builder(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      if (rng.NextBernoulli(prob(u, v))) builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

// One krongen-style quadrant descent from (u, v) at `level` down to the
// leaf cells; pushes the packed edge key unless the ball lands on the
// diagonal.
inline void DescendSingleBall(uint32_t u, uint32_t v, uint32_t level,
                              uint32_t k, const QuadrantLaw& law, Rng& rng,
                              std::vector<uint64_t>* keys) {
  for (; level < k; ++level) {
    const double r = rng.NextDouble();
    uint32_t bu = 0, bv = 0;
    if (r >= law.cdf[2]) {
      bu = 1;
      bv = 1;
    } else if (r >= law.cdf[1]) {
      bu = 1;
    } else if (r >= law.cdf[0]) {
      bv = 1;
    }
    u = (u << 1) | bu;
    v = (v << 1) | bv;
  }
  if (u != v) keys->push_back(PackEdgeKey(u, v));
}

Graph SampleBallDrop(const Initiator2& theta, uint32_t k, Rng& rng,
                     const SkgSampleOptions& options) {
  DPKRON_CHECK_LT(k, 32u);
  const uint32_t n = uint32_t{1} << k;
  const double sum = theta.EntrySum();
  const uint64_t target = sum <= 0.0 ? 0 : DrawTargetEdges(theta, k, rng);
  if (target == 0) return GraphBuilder(n).Build();
  const QuadrantLaw law = MakeQuadrantLaw(theta);

  // Distinct placements accumulate as packed keys deduped by sort+unique
  // per round — no hash set, no per-edge allocation. The pre-reserve is
  // clamped: a Gaussian-perturbed target in a dense corner can be
  // enormous, and reserving `2 × target` up front used to request
  // gigabytes before a single ball dropped.
  constexpr uint64_t kMaxReserve = uint64_t{1} << 22;  // 32 MiB of keys
  std::vector<uint64_t> keys;
  keys.reserve(static_cast<size_t>(std::min(target + target / 16 + 64,
                                            kMaxReserve)));
  const uint64_t max_attempts = static_cast<uint64_t>(
      options.attempt_factor * static_cast<double>(target)) + 64;
  uint64_t attempts = 0;
  uint64_t distinct = 0;
  while (distinct < target && attempts < max_attempts) {
    // One candidate per missing edge, then dedup; the duplicate fraction
    // shrinks geometrically across rounds on sparse graphs.
    const uint64_t batch =
        std::min(target - distinct, max_attempts - attempts);
    for (uint64_t i = 0; i < batch; ++i, ++attempts) {
      DescendSingleBall(0, 0, 0, k, law, rng, &keys);
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    distinct = keys.size();
  }
  return GraphBuilder::FromPackedEdges(n, std::move(keys));
}

// ------------------------- edge-skipping sampler -------------------------
//
// Instead of dropping balls one at a time, the target count is split
// multinomially across the four Kronecker quadrants, level by level:
// a region of the pair space that receives zero balls — in particular
// every region under a zero-probability initiator entry — is skipped
// outright, and the binomial splits themselves skip over failure runs
// geometrically (Rng::NextBinomial). Once a region's count reaches one,
// the remaining levels collapse to a plain quadrant descent. Total work
// is O(E·k) with small constants, and disjoint regions are independent,
// which is what the thread pool exploits.

struct EdgeSkipRegion {
  uint32_t u_prefix = 0;
  uint32_t v_prefix = 0;
  uint32_t level = 0;
  uint64_t count = 0;
};

// Splits `count` balls across the four quadrants by chained conditional
// binomials — together an exact Multinomial(count, q) draw.
inline void SplitRegionCounts(uint64_t count, const QuadrantLaw& law,
                              Rng& rng, uint64_t out[4]) {
  double remaining_prob = 1.0;
  uint64_t remaining = count;
  for (int quad = 0; quad < 3; ++quad) {
    if (remaining == 0) {
      out[quad] = 0;
      continue;
    }
    double p = remaining_prob > 0.0 ? law.q[quad] / remaining_prob : 1.0;
    if (p > 1.0) p = 1.0;  // floating slop near exhausted mass
    out[quad] = rng.NextBinomial(remaining, p);
    remaining -= out[quad];
    remaining_prob -= law.q[quad];
  }
  out[3] = remaining;
}

void DescendRegion(uint32_t u, uint32_t v, uint32_t level, uint64_t count,
                   uint32_t k, const QuadrantLaw& law, Rng& rng,
                   std::vector<uint64_t>* keys) {
  if (count == 0) return;
  if (level == k) {
    // Leaf cell: multiplicity collapses to one simple edge; diagonal
    // cells are the dropped self-loops.
    if (u != v) keys->push_back(PackEdgeKey(u, v));
    return;
  }
  if (count == 1) {
    DescendSingleBall(u, v, level, k, law, rng, keys);
    return;
  }
  uint64_t child[4];
  SplitRegionCounts(count, law, rng, child);
  // Fixed quadrant order — part of the determinism contract.
  DescendRegion((u << 1) | 0, (v << 1) | 0, level + 1, child[0], k, law, rng,
                keys);
  DescendRegion((u << 1) | 0, (v << 1) | 1, level + 1, child[1], k, law, rng,
                keys);
  DescendRegion((u << 1) | 1, (v << 1) | 0, level + 1, child[2], k, law, rng,
                keys);
  DescendRegion((u << 1) | 1, (v << 1) | 1, level + 1, child[3], k, law, rng,
                keys);
}

Graph SampleEdgeSkip(const Initiator2& theta, uint32_t k, Rng& rng) {
  DPKRON_CHECK_MSG(k <= 30, "edge-skip sampler limited to k <= 30");
  const uint32_t n = uint32_t{1} << k;
  const double sum = theta.EntrySum();
  const uint64_t target = sum <= 0.0 ? 0 : DrawTargetEdges(theta, k, rng);
  if (target == 0) return GraphBuilder(n).Build();
  const QuadrantLaw law = MakeQuadrantLaw(theta);

  // Breadth-first multinomial expansion (sequential, on the caller's
  // stream) until there are enough non-empty regions to keep the pool
  // busy. Regions at the same level are disjoint blocks of the pair
  // space; their counts are already final. The region target is a fixed
  // constant — NOT a function of the thread count — because the
  // expansion consumes the caller's stream and the per-region stream
  // assignment must be identical on every machine.
  std::vector<EdgeSkipRegion> frontier = {{0, 0, 0, target}};
  constexpr size_t kDesiredRegions = 256;
  while (frontier.front().level < k && frontier.size() < kDesiredRegions) {
    std::vector<EdgeSkipRegion> next;
    next.reserve(4 * frontier.size());
    for (const EdgeSkipRegion& region : frontier) {
      uint64_t child[4];
      SplitRegionCounts(region.count, law, rng, child);
      for (uint32_t quad = 0; quad < 4; ++quad) {
        if (child[quad] == 0) continue;  // the skip
        next.push_back({(region.u_prefix << 1) | (quad >> 1),
                        (region.v_prefix << 1) | (quad & 1),
                        region.level + 1, child[quad]});
      }
    }
    frontier.swap(next);  // counts are conserved, so `next` is non-empty
  }

  // Parallel phase: region i gets split stream i (assigned in region
  // order, independent of which worker runs it) and its own edge batch;
  // batches are concatenated in region order and canonicalized by the
  // shared sort+unique CSR build. Cross-region duplicates are possible —
  // mirrored blocks canonicalize to the same unordered pair — and are
  // removed there.
  std::vector<Rng> streams = SplitRngStreams(rng, frontier.size());
  std::vector<std::vector<uint64_t>> batches(frontier.size());
  ParallelFor(frontier.size(), 1, [&](size_t i) {
    const EdgeSkipRegion& region = frontier[i];
    batches[i].reserve(static_cast<size_t>(
        std::min<uint64_t>(region.count, uint64_t{1} << 20)));
    DescendRegion(region.u_prefix, region.v_prefix, region.level,
                  region.count, k, law, streams[i], &batches[i]);
  });

  size_t total = 0;
  for (const auto& batch : batches) total += batch.size();
  std::vector<uint64_t> keys;
  keys.reserve(total);
  for (const auto& batch : batches) {
    keys.insert(keys.end(), batch.begin(), batch.end());
  }
  return GraphBuilder::FromPackedEdges(n, std::move(keys));
}

}  // namespace

Graph SampleSkg(const Initiator2& theta, uint32_t k, Rng& rng,
                const SkgSampleOptions& options) {
  DPKRON_CHECK_MSG(theta.IsValid(), "initiator entries outside [0,1]");
  DPKRON_CHECK_GE(k, 1u);
  switch (options.method) {
    case SkgSampleMethod::kExact:
      return SampleExact2(theta, k, rng);
    case SkgSampleMethod::kBallDrop:
      return SampleBallDrop(theta, k, rng, options);
    case SkgSampleMethod::kClassSkip:
      return SampleSkgClassSkip(theta, k, rng);
    case SkgSampleMethod::kEdgeSkip:
      return SampleEdgeSkip(theta, k, rng);
  }
  DPKRON_CHECK_MSG(false, "unknown sample method");
  return Graph();
}

Graph SampleSkgN(const InitiatorN& theta, uint32_t k, Rng& rng) {
  const uint64_t n64 = KroneckerNodeCount(theta.dim(), k);
  DPKRON_CHECK_MSG(n64 <= (uint64_t{1} << 14),
                   "general exact sampler limited to 2^14 nodes");
  const uint32_t n = static_cast<uint32_t>(n64);
  GraphBuilder builder(n);
  // Directed realization restricted to the lower triangle (u > v): this is
  // precisely "symmetrize A* by keeping A*_uv for u > v and drop loops".
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = 0; v < u; ++v) {
      if (rng.NextBernoulli(EdgeProbabilityN(theta, k, u, v))) {
        builder.AddEdge(u, v);
      }
    }
  }
  return builder.Build();
}

}  // namespace dpkron
