// The journal primitive: append/recover round trips, longest-valid-
// prefix recovery under truncation at every byte offset, torn-tail
// repair on reopen, failed-append tail repair / wounding, and the
// RecordBuilder/RecordParser encoding.

#include "src/common/journal.h"

#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dpkron {
namespace {

std::string UniqueTempPath(const std::string& stem) {
  return ::testing::TempDir() + "/" + stem + "_" +
         std::to_string(::getpid()) + ".journal";
}

void RemoveIfPresent(const std::string& path) {
  if (GetEnv()->FileExists(path)) {
    ASSERT_TRUE(GetEnv()->RemoveFile(path).ok());
  }
}

TEST(JournalTest, MissingJournalIsNotFound) {
  const std::string path = UniqueTempPath("journal_missing");
  EXPECT_EQ(ReadJournal(path).status().code(), StatusCode::kNotFound);
}

TEST(JournalTest, AppendRecoverRoundTrip) {
  const std::string path = UniqueTempPath("journal_round_trip");
  RemoveIfPresent(path);
  const std::vector<std::string> payloads = {
      "first", "", std::string("bin\0ary\xff", 8), std::string(1000, 'x')};
  {
    auto writer = JournalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(writer.value()->Append(payload).ok());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  const auto recovery = ReadJournal(path);
  ASSERT_TRUE(recovery.ok());
  EXPECT_EQ(recovery.value().records, payloads);
  EXPECT_FALSE(recovery.value().truncated_tail);
  EXPECT_EQ(recovery.value().valid_bytes,
            GetEnv()->FileSize(path).value());
  RemoveIfPresent(path);
}

TEST(JournalTest, RecoversLongestValidPrefixAtEveryTruncation) {
  // The core crash-safety property: however many trailing bytes a crash
  // tears off, recovery yields some prefix of the appended records —
  // never a half-record, never corrupted contents.
  const std::string path = UniqueTempPath("journal_truncate");
  RemoveIfPresent(path);
  const std::vector<std::string> payloads = {"alpha", "bravo-bravo", "c",
                                             "delta_delta_delta"};
  std::vector<uint64_t> boundaries = {0};  // valid prefix sizes
  {
    auto writer = JournalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    for (const std::string& payload : payloads) {
      ASSERT_TRUE(writer.value()->Append(payload).ok());
      boundaries.push_back(writer.value()->acknowledged_bytes());
    }
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  const auto full = GetEnv()->ReadFileToString(path);
  ASSERT_TRUE(full.ok());
  const std::string bytes = full.value();

  for (uint64_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::string cut_path = path + ".cut";
    RemoveIfPresent(cut_path);
    ASSERT_TRUE(WriteFileDurable(cut_path, bytes.substr(0, cut)).ok());
    const auto recovery = ReadJournal(cut_path);
    ASSERT_TRUE(recovery.ok()) << "cut=" << cut;
    // The recovered prefix is the last record boundary at or below the
    // cut: exactly the acknowledged records whose bytes survived whole.
    size_t expect_records = 0;
    while (expect_records + 1 < boundaries.size() &&
           boundaries[expect_records + 1] <= cut) {
      ++expect_records;
    }
    ASSERT_EQ(recovery.value().records.size(), expect_records)
        << "cut=" << cut;
    for (size_t i = 0; i < expect_records; ++i) {
      EXPECT_EQ(recovery.value().records[i], payloads[i]) << "cut=" << cut;
    }
    EXPECT_EQ(recovery.value().valid_bytes, boundaries[expect_records])
        << "cut=" << cut;
    EXPECT_EQ(recovery.value().truncated_tail,
              cut != boundaries[expect_records])
        << "cut=" << cut;
    RemoveIfPresent(cut_path);
  }
  RemoveIfPresent(path);
}

TEST(JournalTest, CorruptPayloadStopsRecoveryAtPriorRecord) {
  const std::string path = UniqueTempPath("journal_corrupt");
  RemoveIfPresent(path);
  uint64_t first_boundary = 0;
  {
    auto writer = JournalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("good record").ok());
    first_boundary = writer.value()->acknowledged_bytes();
    ASSERT_TRUE(writer.value()->Append("to be corrupted").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  std::string bytes = GetEnv()->ReadFileToString(path).value();
  bytes.back() ^= 0x01;  // flip one payload bit in the second record
  ASSERT_TRUE(WriteFileDurable(path, bytes).ok());
  const auto recovery = ReadJournal(path);
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery.value().records.size(), 1u);
  EXPECT_EQ(recovery.value().records[0], "good record");
  EXPECT_EQ(recovery.value().valid_bytes, first_boundary);
  EXPECT_TRUE(recovery.value().truncated_tail);
  RemoveIfPresent(path);
}

TEST(JournalTest, ReopenTruncatesTornTailAndContinues) {
  const std::string path = UniqueTempPath("journal_reopen");
  RemoveIfPresent(path);
  {
    auto writer = JournalWriter::Open(path, 0);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("kept").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  // Simulate a crash mid-append: garbage after the valid prefix.
  {
    auto file = GetEnv()->NewAppendableFile(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file.value()->Append("\x07torn").ok());
    ASSERT_TRUE(file.value()->Close().ok());
  }
  const auto recovery = ReadJournal(path);
  ASSERT_TRUE(recovery.ok());
  ASSERT_TRUE(recovery.value().truncated_tail);
  {
    auto writer = JournalWriter::Open(path, recovery.value().valid_bytes);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer.value()->Append("appended after repair").ok());
    ASSERT_TRUE(writer.value()->Close().ok());
  }
  const auto again = ReadJournal(path);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again.value().records.size(), 2u);
  EXPECT_EQ(again.value().records[0], "kept");
  EXPECT_EQ(again.value().records[1], "appended after repair");
  EXPECT_FALSE(again.value().truncated_tail);
  RemoveIfPresent(path);
}

TEST(JournalTest, OpenRefusesShrunkenFile) {
  const std::string path = UniqueTempPath("journal_shrunk");
  RemoveIfPresent(path);
  ASSERT_TRUE(WriteFileDurable(path, "tiny").ok());
  // Claiming a valid prefix longer than the file means the recovery
  // state is stale — refusing beats silently re-journaling over it.
  EXPECT_FALSE(JournalWriter::Open(path, 1000).ok());
  RemoveIfPresent(path);
}

TEST(JournalTest, FailedAppendRepairsTailAndRefusedRecordIsAbsent) {
  const std::string path = UniqueTempPath("journal_failed_append");
  FaultInjectionEnv env;
  ScopedEnvOverride scope(&env);
  RemoveIfPresent(path);
  auto writer = JournalWriter::Open(path, 0);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.value()->Append("durable one").ok());
  const uint64_t acked = writer.value()->acknowledged_bytes();

  // The record's frame+payload land but the fsync fails: the append must
  // refuse, and the torn tail must not survive on disk.
  env.FailSyncs(/*after=*/0, Status::Internal("EIO"));
  EXPECT_FALSE(writer.value()->Append("lost two").ok());
  env.ClearFaults();
  EXPECT_EQ(writer.value()->acknowledged_bytes(), acked);
  EXPECT_FALSE(writer.value()->wounded());  // tail repair succeeded

  // The writer keeps working after the repair.
  ASSERT_TRUE(writer.value()->Append("durable three").ok());
  ASSERT_TRUE(writer.value()->Close().ok());
  const auto recovery = ReadJournal(path, &env);
  ASSERT_TRUE(recovery.ok());
  ASSERT_EQ(recovery.value().records.size(), 2u);
  EXPECT_EQ(recovery.value().records[0], "durable one");
  EXPECT_EQ(recovery.value().records[1], "durable three");
  RemoveIfPresent(path);
}

TEST(RecordCodecTest, BuildParseRoundTrip) {
  const std::string record = RecordBuilder()
                                 .U32(7)
                                 .Str("analyst-a")
                                 .Double(0.25)
                                 .U64(1ull << 40)
                                 .Str("")
                                 .str();
  RecordParser parser(record);
  EXPECT_EQ(parser.U32(), 7u);
  EXPECT_EQ(parser.Str(), "analyst-a");
  EXPECT_EQ(parser.Double(), 0.25);
  EXPECT_EQ(parser.U64(), 1ull << 40);
  EXPECT_EQ(parser.Str(), "");
  EXPECT_TRUE(parser.ok());
  EXPECT_TRUE(parser.done());
}

TEST(RecordCodecTest, ShortAndOverlongRecordsFlagNotOk) {
  const std::string record = RecordBuilder().U32(1).str();
  RecordParser short_parser(record);
  short_parser.U64();  // reads past the end
  EXPECT_FALSE(short_parser.ok());

  RecordParser trailing(record);
  trailing.U32();
  EXPECT_TRUE(trailing.ok());
  EXPECT_TRUE(trailing.done());

  RecordParser partial(RecordBuilder().U32(1).U32(2).str());
  partial.U32();
  EXPECT_TRUE(partial.ok());
  EXPECT_FALSE(partial.done());  // trailing garbage -> not done

  // A string whose recorded length exceeds the remaining bytes.
  RecordParser bad_str(RecordBuilder().U32(1000).str());
  bad_str.Str();
  EXPECT_FALSE(bad_str.ok());
}

}  // namespace
}  // namespace dpkron
