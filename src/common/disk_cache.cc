#include "src/common/disk_cache.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <thread>
#include <utility>

#include "src/common/env.h"
#include "src/common/fnv.h"

namespace dpkron {
namespace {

// "DPKCACH1" as a little-endian u64 — the entry-payload magic.
constexpr uint64_t kDiskCacheMagic = 0x3148434143'4b5044ull;
// Bump whenever any domain's value encoding changes: old entries then
// fail validation and degrade to misses instead of decoding garbage.
constexpr uint32_t kDiskCacheFormatVersion = 1;

// Creates `path` and any missing ancestors, one level at a time.
// Idempotent; returns the first hard failure.
Status CreateDirRecursive(const std::string& path, Env* env) {
  Status status;
  for (size_t slash = path.find('/', 1); slash != std::string::npos;
       slash = path.find('/', slash + 1)) {
    if (slash == 0) continue;
    status = env->CreateDir(path.substr(0, slash));
    if (!status.ok()) return status;
  }
  return env->CreateDir(path);
}

}  // namespace

Result<std::unique_ptr<DiskCache>> DiskCache::Open(const std::string& root,
                                                   const Options& options) {
  if (root.empty()) {
    return Status::InvalidArgument("disk cache root must be non-empty");
  }
  std::string normalized = root;
  while (normalized.size() > 1 && normalized.back() == '/') {
    normalized.pop_back();
  }
  const Status created = CreateDirRecursive(normalized, GetEnv());
  if (!created.ok()) return created;
  return std::unique_ptr<DiskCache>(
      new DiskCache(std::move(normalized), options));
}

std::string DiskCache::EntryPath(const char* domain, uint64_t key) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(key));
  return root_ + "/" + domain + "-" + hex + ".dpkc";
}

Result<std::string> DiskCache::Load(const char* domain, uint64_t key) const {
  const std::string path = EntryPath(domain, key);
  Env* env = GetEnv();
  // The entry is exactly one framed record; reuse the journal reader so
  // torn tails and checksum failures are detected by the same code the
  // checkpoint/ledger recovery paths already trust. A missing file is
  // the common miss; any other read error (EIO, injected fault) is
  // indistinguishable from "no usable entry" for a cache.
  auto read = ReadJournal(path);
  if (!read.ok() && read.status().code() == StatusCode::kNotFound) {
    return Status::NotFound(path + ": no disk cache entry");
  }
  const bool framed = read.ok() && read.value().records.size() == 1 &&
                      !read.value().truncated_tail;
  std::string value_bytes;
  bool valid = false;
  if (framed) {
    RecordParser rec(read.value().records.front());
    const uint64_t magic = rec.U64();
    const uint32_t version = rec.U32();
    const std::string recorded_domain = rec.Str();
    const uint64_t recorded_key = rec.U64();
    value_bytes = rec.Str();
    valid = rec.done() && magic == kDiskCacheMagic &&
            version == kDiskCacheFormatVersion && recorded_domain == domain &&
            recorded_key == key;
  }
  if (!valid) {
    // Torn, corrupt, foreign-format or mis-filed: a clean miss. Unlink
    // the corpse (best-effort) so the recompute's Store reinstalls a
    // good entry even if rename-over-existing is ever restricted.
    (void)env->RemoveFile(path);
    return Status::NotFound(path + ": invalid disk cache entry");
  }
  return value_bytes;
}

Status DiskCache::Store(const char* domain, uint64_t key,
                        std::string_view value_bytes) const {
  const std::string payload = RecordBuilder()
                                  .U64(kDiskCacheMagic)
                                  .U32(kDiskCacheFormatVersion)
                                  .Str(domain)
                                  .U64(key)
                                  .Str(value_bytes)
                                  .str();
  std::string image;
  AppendFramedRecord(&image, payload);
  const std::string path = EntryPath(domain, key);
  const Status written = WriteFileDurable(path, image);
  if (written.ok()) EnforceByteBudget(path);
  return written;
}

namespace {

// One .dpkc entry as the eviction pass sees it.
struct EntryFile {
  std::string path;
  uint64_t size = 0;
  std::filesystem::file_time_type mtime;
};

// Scans the root for .dpkc entries; stat failures (an entry evicted or
// adopted by a concurrent process mid-scan) drop the entry from the
// listing rather than failing the pass.
std::vector<EntryFile> ListEntries(const std::string& root) {
  namespace fs = std::filesystem;
  std::vector<EntryFile> entries;
  std::error_code ec;
  fs::directory_iterator it(root, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (it->path().extension() != ".dpkc") continue;
    std::error_code size_ec, mtime_ec;
    EntryFile entry;
    entry.path = it->path().string();
    entry.size = it->file_size(size_ec);
    entry.mtime = it->last_write_time(mtime_ec);
    if (size_ec || mtime_ec) continue;
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace

uint64_t DiskCache::EntryBytes() const {
  uint64_t total = 0;
  for (const EntryFile& entry : ListEntries(root_)) total += entry.size;
  return total;
}

void DiskCache::EnforceByteBudget(const std::string& keep_path) const {
  if (options_.byte_budget == 0) return;
  std::vector<EntryFile> entries = ListEntries(root_);
  uint64_t total = 0;
  for (const EntryFile& entry : entries) total += entry.size;
  if (total <= options_.byte_budget) return;
  // Oldest first; path as the tie-break so concurrent enforcers walk the
  // same order instead of each deleting a different same-age entry.
  std::sort(entries.begin(), entries.end(),
            [](const EntryFile& a, const EntryFile& b) {
              return a.mtime != b.mtime ? a.mtime < b.mtime : a.path < b.path;
            });
  Env* env = GetEnv();
  for (const EntryFile& entry : entries) {
    if (total <= options_.byte_budget) break;
    if (entry.path == keep_path) continue;
    // A live ".lock" sidecar marks an in-flight DiskEntryClaim (a loser
    // may be polling to adopt this entry): pinned.
    std::error_code lock_ec;
    if (std::filesystem::exists(entry.path + ".lock", lock_ec)) continue;
    if (env->RemoveFile(entry.path).ok()) total -= entry.size;
  }
}

// ------------------------------------------------------ DiskEntryClaim

DiskEntryClaim::DiskEntryClaim(const DiskCache* cache, const char* domain,
                               uint64_t key)
    : cache_(cache), domain_(domain), key_(key) {
  if (cache_ != nullptr) {
    lock_path_ = cache_->EntryPath(domain, key) + ".lock";
  }
}

DiskEntryClaim::~DiskEntryClaim() { ReleaseLock(); }

void DiskEntryClaim::ReleaseLock() {
  if (!lock_held_) return;
  lock_held_ = false;
  (void)GetEnv()->RemoveFile(lock_path_);
}

namespace {

// One O_EXCL attempt on `path`. kFailedPrecondition = held elsewhere;
// any other failure means locks don't work here (permissions, injected
// fault) and the caller proceeds uncoordinated.
Status TryAcquireLock(const std::string& path) {
  auto file = GetEnv()->NewExclusiveFile(path);
  if (!file.ok()) return file.status();
  (void)file.value()->Close();
  return Status::Ok();
}

}  // namespace

bool DiskEntryClaim::TryLoad(std::string* value_bytes) {
  if (cache_ == nullptr) return false;
  auto loaded = cache_->Load(domain_, key_);
  if (loaded.ok()) {
    *value_bytes = std::move(loaded).value();
    return true;
  }
  // Cold key: elect a computer. Winner returns false holding the lock;
  // a loser polls for the winner's entry, adopting it mid-wait. A lock
  // that outlives lock_stale_ms is presumed orphaned by a crashed
  // holder: break it and compute. Every failure of the protocol itself
  // degrades to an uncoordinated compute — duplicated work with
  // byte-identical results (the cache contract), never a wrong value.
  const Status acquired = TryAcquireLock(lock_path_);
  if (acquired.ok()) {
    lock_held_ = true;
    return false;
  }
  if (acquired.code() != StatusCode::kFailedPrecondition) return false;
  const DiskCache::Options& options = cache_->options();
  const int64_t poll_ms = options.lock_poll_ms < 1 ? 1 : options.lock_poll_ms;
  int64_t waited_ms = 0;
  while (waited_ms < options.lock_stale_ms) {
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
    waited_ms += poll_ms;
    auto retry = cache_->Load(domain_, key_);
    if (retry.ok()) {
      *value_bytes = std::move(retry).value();
      return true;
    }
    if (TryAcquireLock(lock_path_).ok()) {  // released without an entry
      lock_held_ = true;
      return false;
    }
  }
  // Stale: remove + reacquire. Losing the remove/create race to another
  // breaker just means both compute, uncoordinated.
  (void)GetEnv()->RemoveFile(lock_path_);
  lock_held_ = TryAcquireLock(lock_path_).ok();
  return false;
}

void DiskEntryClaim::Store(std::string_view value_bytes) {
  if (cache_ == nullptr) return;
  const Status stored = cache_->Store(domain_, key_, value_bytes);
  if (!stored.ok()) {
    // Best-effort tier: the in-memory value is already correct, the
    // next process recomputes. Same posture as the sidecar-cache write.
    std::fprintf(stderr,
                 "# warning: disk cache write failed (%s); entry %s will be "
                 "recomputed next process\n",
                 stored.ToString().c_str(),
                 cache_->EntryPath(domain_, key_).c_str());
  }
  ReleaseLock();
}

}  // namespace dpkron
