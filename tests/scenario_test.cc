// The scenario engine and the registered catalog: registry integrity,
// migration completeness (every deleted bench binary has a scenario),
// parameter resolution, JSON emission, and a smoke run of every
// registered scenario at tiny axes.

#include "src/core/scenario.h"

#include <cstdio>
#include <fstream>
#include <set>
#include <string>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/graph/graph_io.h"
#include "src/scenarios/scenarios.h"

namespace dpkron {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterAllScenarios(); }
};

TEST_F(ScenarioTest, RegistryHoldsTheFullCatalog) {
  EXPECT_GE(AllScenarios().size(), 12u);
  std::set<std::string> names;
  for (const ScenarioSpec& spec : AllScenarios()) {
    EXPECT_TRUE(names.insert(spec.name).second)
        << "duplicate scenario " << spec.name;
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    EXPECT_TRUE(static_cast<bool>(spec.run)) << spec.name;
    EXPECT_EQ(FindScenario(spec.name), &spec);
  }
  EXPECT_EQ(FindScenario("no_such_scenario"), nullptr);
}

TEST_F(ScenarioTest, EveryLegacyBinaryHasAScenario) {
  const char* legacy[] = {
      "fig1_ca_grqc",          "fig2_as20",
      "fig3_ca_hepth",         "fig4_synthetic",
      "table1_parameters",     "comparison_dk2",
      "ablation_epsilon_sweep", "ablation_feature_route",
      "ablation_model_selection", "ablation_objective",
      "ablation_postprocess",  "ablation_smooth_sensitivity",
  };
  std::set<std::string> ported;
  for (const ScenarioSpec& spec : AllScenarios()) {
    ported.insert(spec.legacy_binary);
  }
  for (const char* binary : legacy) {
    EXPECT_TRUE(ported.count(binary)) << "no scenario ports " << binary;
  }
}

TEST_F(ScenarioTest, ResolveParamsAppliesOverridesThenSmoke) {
  ScenarioParams defaults;
  defaults.seed = 7;
  defaults.realizations = 100;
  defaults.trials = 10;
  defaults.kronfit_iterations = 40;
  defaults.sweep_epsilons = {0.05, 0.1, 0.2, 0.5};

  ScenarioOverrides overrides;
  overrides.seed = 11;
  overrides.epsilon = 0.5;
  ScenarioParams p = ResolveParams(defaults, overrides);
  EXPECT_EQ(p.seed, 11u);
  EXPECT_DOUBLE_EQ(p.epsilon, 0.5);
  EXPECT_EQ(p.realizations, 100u);
  EXPECT_EQ(p.sweep_epsilons.size(), 4u);

  overrides.smoke = true;
  p = ResolveParams(defaults, overrides);
  EXPECT_EQ(p.realizations, 2u);
  EXPECT_EQ(p.trials, 2u);
  EXPECT_EQ(p.kronfit_iterations, 5u);
  EXPECT_EQ(p.sweep_epsilons.size(), 2u);

  // An explicit flag wins over smoke shrinking.
  overrides.realizations = 50;
  overrides.sweep_epsilons = std::vector<double>{0.1, 0.2, 0.3};
  p = ResolveParams(defaults, overrides);
  EXPECT_EQ(p.realizations, 50u);
  EXPECT_EQ(p.sweep_epsilons.size(), 3u);

  // Dataset override + cache flag pass through untouched by smoke.
  overrides.dataset = "some/file.edges";
  overrides.dataset_cache = true;
  p = ResolveParams(defaults, overrides);
  EXPECT_EQ(p.dataset, "some/file.edges");
  EXPECT_TRUE(p.dataset_cache);
}

TEST_F(ScenarioTest, ScenarioDatasetsOverrideSynthesizesOneEntry) {
  ScenarioParams p;
  EXPECT_EQ(ScenarioDatasets(p).size(), PaperDatasets().size());

  p.dataset = "graphs/snap.edges";
  const auto datasets = ScenarioDatasets(p);
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0].name, "graphs/snap.edges");
  EXPECT_EQ(datasets[0].generator, nullptr);

  // A registry-name override keeps the full entry, paper columns and
  // generator included.
  p.dataset = "AS20-like";
  const auto registry = ScenarioDatasets(p);
  ASSERT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry[0].paper_name, "AS20");
  EXPECT_EQ(registry[0].paper_nodes, 6474u);
  EXPECT_NE(registry[0].generator, nullptr);
}

TEST_F(ScenarioTest, LoadScenarioGraphPrefersOverride) {
  const std::string path = ::testing::TempDir() + "/scenario_override.edges";
  std::ofstream(path) << "0 1\n1 2\n2 3\n";
  ScenarioParams p;
  p.dataset = path;
  Rng rng(1);
  // The spec-declared registry name loses to the override.
  const auto graph = LoadScenarioGraph("AS20-like", p, rng);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().NumNodes(), 4u);

  ScenarioParams no_override;
  Rng rng2(1);
  const auto registry = LoadScenarioGraph("AS20-like", no_override, rng2);
  ASSERT_TRUE(registry.ok());
  EXPECT_EQ(registry.value().NumNodes(), 6474u);

  Rng rng3(1);
  const auto missing =
      LoadScenarioGraph("no-such-dataset", no_override, rng3);
  EXPECT_FALSE(missing.ok());
  std::remove(path.c_str());
}

// A registered scenario must run end to end on a file-backed source:
// write an edge list, point the --dataset override at it, and check the
// run emits series rows for it.
TEST_F(ScenarioTest, FileBackedDatasetRunsEndToEnd) {
  const std::string path = ::testing::TempDir() + "/scenario_e2e.edges";
  {
    // A small but statistically non-trivial graph: two hubs + ring.
    std::ofstream out(path);
    out << "# scenario fixture\r\n";
    const int n = 120;
    for (int i = 2; i < n; ++i) {
      out << 0 << '\t' << i << "\r\n";
      if (i % 2 == 0) out << 1 << ' ' << i << '\n';
      out << i << '\t' << (i - 1) << '\n';
    }
  }
  const std::string cache = BinaryCachePath(path);
  std::remove(cache.c_str());

  const ScenarioSpec* spec = FindScenario("fig2_as20");
  ASSERT_NE(spec, nullptr);
  ScenarioOverrides overrides;
  overrides.smoke = true;
  overrides.kronfit_iterations = 2;
  overrides.dataset = path;
  overrides.dataset_cache = true;
  ScenarioOutput output(spec->name, /*text_out=*/nullptr);
  const Status status = RunScenario(*spec, overrides, output);
  ASSERT_TRUE(status.ok()) << status.ToString();

  JsonWriter json;
  output.AppendRunJson(json);
  EXPECT_NE(json.str().find("\"rows\":[{"), std::string::npos);
  EXPECT_NE(json.str().find("scenario_e2e.edges"), std::string::npos);
  // The cache flag produced the sidecar.
  std::ifstream sidecar(cache);
  EXPECT_TRUE(sidecar.good());

  std::remove(path.c_str());
  std::remove(cache.c_str());
}

// Every registered scenario must complete a smoke run and produce at
// least one non-empty series. This is the regression net for the whole
// catalog: a scenario that stops emitting rows (or starts failing) is
// caught here, not in CI's artifact diff.
TEST_F(ScenarioTest, EveryScenarioSmokeRunEmitsSeries) {
  for (const ScenarioSpec& spec : AllScenarios()) {
    SCOPED_TRACE(spec.name);
    ScenarioOverrides overrides;
    overrides.smoke = true;
    overrides.trials = 1;
    overrides.realizations = spec.defaults.realizations > 0 ? 1 : 0;
    overrides.kronfit_iterations = 2;
    if (!spec.defaults.sweep_epsilons.empty()) {
      overrides.sweep_epsilons = std::vector<double>{0.5};
    }
    ScenarioOutput output(spec.name, /*text_out=*/nullptr);
    const Status status = RunScenario(spec, overrides, output);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_GT(output.elapsed_seconds(), 0.0);

    JsonWriter json;
    output.AppendRunJson(json);
    const std::string& doc = json.str();
    EXPECT_NE(doc.find("\"scenario\":\"" + spec.name + "\""),
              std::string::npos);
    // At least one table with at least one row.
    EXPECT_NE(doc.find("\"rows\":[{"), std::string::npos)
        << "scenario emitted no series rows";
  }
}

TEST_F(ScenarioTest, ExactSensitivityFlagLandsInRunJson) {
  ScenarioOutput output("flagged", nullptr);
  auto doc = [&output] {
    JsonWriter json;
    output.AppendRunJson(json);
    return json.str();
  };
  // No profile computed: null.
  EXPECT_NE(doc().find("\"exact_sensitivity\":null"), std::string::npos);
  output.RecordExactSensitivity(true);
  EXPECT_NE(doc().find("\"exact_sensitivity\":true"), std::string::npos);
  // AND semantics: one conservative fallback taints the whole run.
  output.RecordExactSensitivity(false);
  output.RecordExactSensitivity(true);
  EXPECT_NE(doc().find("\"exact_sensitivity\":false"), std::string::npos);
}

TEST_F(ScenarioTest, DegenerateEpsilonFailsWithStatusBeforeRunning) {
  const ScenarioSpec* spec = FindScenario("fig2_as20");
  ASSERT_NE(spec, nullptr);
  ScenarioOverrides overrides;
  overrides.smoke = true;
  overrides.epsilon = 0.0;
  ScenarioOutput output(spec->name, /*text_out=*/nullptr);
  const Status status = RunScenario(*spec, overrides, output);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("epsilon"), std::string::npos);
}

TEST_F(ScenarioTest, ScenariosJsonWrapsRuns) {
  ScenarioOutput a("alpha", nullptr);
  a.Table("panel").Add("s", 1.0, 2.0);
  ScenarioOutput b("beta", nullptr);
  const std::string doc = ScenariosJson({&a, &b}, 4);
  EXPECT_NE(doc.find("\"schema\":\"dpkron.scenarios.v1\""),
            std::string::npos);
  EXPECT_NE(doc.find("\"threads\":4"), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\":\"alpha\""), std::string::npos);
  EXPECT_NE(doc.find("\"scenario\":\"beta\""), std::string::npos);
  EXPECT_NE(doc.find("\"experiment\":\"alpha/panel\""), std::string::npos);
}

TEST_F(ScenarioTest, OutputRecordsBudgetLedger) {
  ScenarioOutput output("budgeted", nullptr);
  PrivacyBudget budget(0.2, 0.01);
  ASSERT_TRUE(budget.Spend(0.1, 0.0, "degree sequence").ok());
  ASSERT_TRUE(budget.Spend(0.1, 0.01, "triangles").ok());
  output.RecordBudget(budget, /*print=*/false);
  JsonWriter json;
  output.AppendRunJson(json);
  EXPECT_NE(json.str().find("\"label\":\"degree sequence\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"label\":\"triangles\""), std::string::npos);
}

}  // namespace
}  // namespace dpkron
