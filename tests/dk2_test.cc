#include "src/dk/dk2.h"

#include <cmath>

#include <gtest/gtest.h>
#include "src/common/rng.h"
#include "src/datasets/affiliation.h"
#include "src/graph/degree.h"
#include "src/graph/extra_stats.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

using testing::CompleteGraph;
using testing::MakeGraph;
using testing::PathGraph;
using testing::StarGraph;

TEST(Dk2TableTest, ExtractionOnStar) {
  // Star on 5 nodes: 4 edges, all between degree-4 and degree-1 nodes.
  const Dk2Table table = Dk2Table::FromGraph(StarGraph(5));
  EXPECT_DOUBLE_EQ(table.Count(1, 4), 4.0);
  EXPECT_DOUBLE_EQ(table.Count(4, 1), 4.0);  // order-insensitive
  EXPECT_DOUBLE_EQ(table.Count(1, 1), 0.0);
  EXPECT_DOUBLE_EQ(table.TotalEdges(), 4.0);
  EXPECT_EQ(table.max_degree(), 4u);
}

TEST(Dk2TableTest, ExtractionOnPath) {
  // P4 degrees 1,2,2,1: edges (1,2), (2,2), (2,1).
  const Dk2Table table = Dk2Table::FromGraph(PathGraph(4));
  EXPECT_DOUBLE_EQ(table.Count(1, 2), 2.0);
  EXPECT_DOUBLE_EQ(table.Count(2, 2), 1.0);
}

TEST(Dk2TableTest, TotalMatchesEdgeCount) {
  Rng rng(1);
  AffiliationOptions options;
  options.num_authors = 600;
  options.num_papers = 400;
  const Graph g = AffiliationGraph(options, rng);
  const Dk2Table table = Dk2Table::FromGraph(g);
  EXPECT_DOUBLE_EQ(table.TotalEdges(), double(g.NumEdges()));
}

TEST(Dk2TableTest, ImpliedNodeCounts) {
  const Dk2Table table = Dk2Table::FromGraph(StarGraph(5));
  EXPECT_DOUBLE_EQ(table.ImpliedNodeCount(1), 4.0);
  EXPECT_DOUBLE_EQ(table.ImpliedNodeCount(4), 1.0);
  // Complete graph K4: 6 edges all (3,3); diagonal counted twice:
  // (6 + 6)/3 = 4 nodes.
  const Dk2Table k4 = Dk2Table::FromGraph(CompleteGraph(4));
  EXPECT_DOUBLE_EQ(k4.ImpliedNodeCount(3), 4.0);
}

TEST(Dk2TableTest, L1Distance) {
  Dk2Table a, b;
  a.Set(1, 2, 5.0);
  a.Set(2, 2, 1.0);
  b.Set(1, 2, 3.0);
  b.Set(3, 3, 4.0);
  EXPECT_DOUBLE_EQ(Dk2Table::L1Distance(a, b), 2.0 + 1.0 + 4.0);
  EXPECT_DOUBLE_EQ(Dk2Table::L1Distance(a, a), 0.0);
}

TEST(PrivatizeDk2Test, ChargesBudget) {
  Rng rng(2);
  const Dk2Table exact = Dk2Table::FromGraph(StarGraph(20));
  PrivacyBudget budget(1.0, 0.0);
  const auto noisy = PrivatizeDk2(exact, 1.0, budget, rng);
  ASSERT_TRUE(noisy.ok());
  EXPECT_NEAR(budget.epsilon_spent(), 1.0, 1e-12);
}

TEST(PrivatizeDk2Test, RefusesBadParameters) {
  Rng rng(3);
  PrivacyBudget budget(1.0, 0.0);
  EXPECT_FALSE(PrivatizeDk2(Dk2Table(), 1.0, budget, rng).ok());  // empty
  const Dk2Table exact = Dk2Table::FromGraph(PathGraph(4));
  EXPECT_FALSE(PrivatizeDk2(exact, -0.5, budget, rng).ok());
}

TEST(PrivatizeDk2Test, HighEpsilonPreservesTable) {
  Rng rng(4);
  const Graph g = StarGraph(40);
  const Dk2Table exact = Dk2Table::FromGraph(g);
  PrivacyBudget budget(1e6, 0.0);
  Dk2PrivatizeOptions options;
  options.threshold_sparsify = false;
  const auto noisy = PrivatizeDk2(exact, 1e6, budget, rng, options);
  ASSERT_TRUE(noisy.ok());
  EXPECT_LT(Dk2Table::L1Distance(exact, noisy.value()), 1.0);
}

TEST(PrivatizeDk2Test, SparsificationSuppressesNoiseMass) {
  Rng rng(5);
  const Graph g = StarGraph(60);  // one real cell, 59 max degree
  const Dk2Table exact = Dk2Table::FromGraph(g);
  PrivacyBudget budget(10.0, 0.0);
  const auto noisy = PrivatizeDk2(exact, 1.0, budget, rng);
  ASSERT_TRUE(noisy.ok());
  // Without thresholding the ~1800 cells would carry huge clamped-noise
  // mass; with it, total mass stays within a few× the real mass.
  EXPECT_LT(noisy.value().TotalEdges(), 20 * exact.TotalEdges() + 1e4);
}

TEST(SampleDk2GraphTest, RealizesExactTableApproximately) {
  Rng rng(6);
  AffiliationOptions options;
  options.num_authors = 800;
  options.num_papers = 520;
  const Graph original = AffiliationGraph(options, rng);
  const Dk2Table exact = Dk2Table::FromGraph(original);
  const Graph rebuilt = SampleDk2Graph(exact, rng);
  // Edge mass within a few percent (greedy matching drops a remainder).
  EXPECT_NEAR(double(rebuilt.NumEdges()), double(original.NumEdges()),
              0.05 * double(original.NumEdges()));
  // Degree-degree structure carries over: assortativity within 0.15.
  EXPECT_NEAR(DegreeAssortativity(rebuilt), DegreeAssortativity(original),
              0.15);
  // JDD itself is close in L1 (relative to edge mass).
  const Dk2Table rebuilt_table = Dk2Table::FromGraph(rebuilt);
  EXPECT_LT(Dk2Table::L1Distance(exact, rebuilt_table),
            0.35 * exact.TotalEdges());
}

TEST(SampleDk2GraphTest, EmptyTableGivesEmptyGraph) {
  Rng rng(7);
  const Graph g = SampleDk2Graph(Dk2Table(), rng);
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(PrivateDk2ReleaseTest, EndToEnd) {
  Rng rng(8);
  AffiliationOptions options;
  options.num_authors = 500;
  options.num_papers = 320;
  const Graph original = AffiliationGraph(options, rng);
  PrivacyBudget budget(20.0, 0.0);
  const auto released = PrivateDk2Release(original, 20.0, budget, rng);
  ASSERT_TRUE(released.ok());
  EXPECT_GT(released.value().NumEdges(), 0u);
  EXPECT_NEAR(budget.epsilon_spent(), 20.0, 1e-12);
}

TEST(PrivateDk2ReleaseTest, DeterministicGivenSeed) {
  Rng g_rng(9);
  const Graph g = testing::CompleteGraph(24);
  Rng rng1(10), rng2(10);
  PrivacyBudget b1(5.0, 0.0), b2(5.0, 0.0);
  const auto r1 = PrivateDk2Release(g, 5.0, b1, rng1);
  const auto r2 = PrivateDk2Release(g, 5.0, b2, rng2);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().Edges(), r2.value().Edges());
}

}  // namespace
}  // namespace dpkron
