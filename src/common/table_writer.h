// TSV experiment-output writer used by the bench harnesses.
//
// Every table/figure binary emits (1) machine-readable TSV blocks — one row
// per plotted point, tagged with the series name — and (2) a human-readable
// summary. Keeping the format in one place makes the bench outputs uniform
// and trivially grep-able / plottable.

#ifndef DPKRON_COMMON_TABLE_WRITER_H_
#define DPKRON_COMMON_TABLE_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace dpkron {

// Accumulates named series of (x, y) points and prints them as TSV.
class SeriesTable {
 public:
  // `experiment` tags every emitted row (e.g. "fig1_ca_grqc/hop_plot").
  explicit SeriesTable(std::string experiment);

  void Add(const std::string& series, double x, double y);

  // Prints "# experiment<TAB>series<TAB>x<TAB>y" header then all rows to
  // `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  size_t size() const { return rows_.size(); }

 private:
  struct Row {
    std::string series;
    double x;
    double y;
  };
  std::string experiment_;
  std::vector<Row> rows_;
};

// Prints a titled key/value block, e.g. fitted parameters.
class SummaryBlock {
 public:
  explicit SummaryBlock(std::string title);

  void Add(const std::string& key, double value);
  void Add(const std::string& key, const std::string& value);

  void Print(std::FILE* out = stdout) const;

 private:
  std::string title_;
  std::vector<std::pair<std::string, std::string>> items_;
};

}  // namespace dpkron

#endif  // DPKRON_COMMON_TABLE_WRITER_H_
