// The fused per-node statistics pass behind ReleasePipeline::Compute.
//
// The degree / triangle / clustering panel family needs exactly two
// per-node quantities: d_u and t_u (the local clustering coefficient is
// t_u over the wedge count d_u(d_u-1)/2 — t_u IS the clustering
// numerator). Computed separately, each kernel walks the CSR once;
// fused, a single traversal derives the degrees from the offsets array
// and builds the rank-oriented forward lists whose intersections yield
// t_u — the intersections then run over the compact forward CSR, not
// the view, so the whole family costs ONE pass over the backing store.
// That is the difference between touching an out-of-core graph's pages
// once and touching them three times.
//
// Pass accounting: ComputeNodeStats records exactly one "node_stats"
// pass on the view and nothing else (the constituent kernels' labels
// stay silent); tests pin this so a regression that un-fuses the family
// fails loudly.
//
// Determinism: degrees are exact integers read off the offsets;
// triangle counts are exact integers identical to PerNodeTriangles'
// output on every dispatch path (scalar and AVX2 agree bit-for-bit on
// integer counts). NodeStats is therefore byte-identical across
// backings (in-RAM vs mmap) and thread counts.

#ifndef DPKRON_GRAPH_NODE_STATS_H_
#define DPKRON_GRAPH_NODE_STATS_H_

#include <cstdint>
#include <vector>

#include "src/graph/graph_view.h"

namespace dpkron {

struct NodeStats {
  std::vector<uint32_t> degrees;    // d_u
  std::vector<uint64_t> triangles;  // t_u (clustering numerators)

  bool operator==(const NodeStats&) const = default;
};

// StatCache byte-budget accounting (common/stat_cache.h).
inline size_t ApproxCacheBytes(const NodeStats& stats) {
  return sizeof(stats) + stats.degrees.capacity() * sizeof(uint32_t) +
         stats.triangles.capacity() * sizeof(uint64_t);
}

// One fused CSR traversal: degrees + per-node triangle counts.
// Equivalent to {DegreeVector(graph), PerNodeTriangles(graph)} but
// records a single "node_stats" pass.
NodeStats ComputeNodeStats(GraphView graph);

}  // namespace dpkron

#endif  // DPKRON_GRAPH_NODE_STATS_H_
