// The time seam for dpkrond — the clock analogue of common/env.h.
//
// Every deadline decision the server makes (admission stamps, the
// dequeue check, the pre-spend check, retry-after hints) reads time
// through this interface instead of calling std::chrono directly, so
// tests can drive the deadline machinery deterministically: a FakeClock
// makes "the request sat in the queue past its deadline" a statement a
// unit test can arrange exactly, instead of a sleep it can only hope
// for. The real implementation is a monotonic clock — deadlines must
// not jump when NTP steps the wall clock.

#ifndef DPKRON_SERVER_CLOCK_H_
#define DPKRON_SERVER_CLOCK_H_

#include <cstdint>
#include <mutex>

namespace dpkron {

class Clock {
 public:
  virtual ~Clock() = default;

  // The process-wide monotonic clock. Never null.
  static Clock* System();

  // Milliseconds since an arbitrary fixed origin. Monotone
  // non-decreasing within a process.
  virtual int64_t NowMillis() = 0;
};

// Deterministic test clock. Time moves only when the test says so:
// explicitly via Advance(), or implicitly by `auto_advance_ms` per
// NowMillis() read — the knob that lets a test walk a request past its
// deadline at a chosen pipeline checkpoint without controlling thread
// interleavings. Thread-safe (server workers and the test advance it
// concurrently).
class FakeClock : public Clock {
 public:
  explicit FakeClock(int64_t now_ms = 0, int64_t auto_advance_ms = 0)
      : now_ms_(now_ms), auto_advance_ms_(auto_advance_ms) {}

  int64_t NowMillis() override {
    std::lock_guard<std::mutex> lock(mu_);
    const int64_t now = now_ms_;
    now_ms_ += auto_advance_ms_;
    return now;
  }

  void Advance(int64_t delta_ms) {
    std::lock_guard<std::mutex> lock(mu_);
    now_ms_ += delta_ms;
  }

 private:
  std::mutex mu_;
  int64_t now_ms_;
  const int64_t auto_advance_ms_;
};

}  // namespace dpkron

#endif  // DPKRON_SERVER_CLOCK_H_
