// KronMom: the Gleich–Owen moment-matching estimator of the SKG initiator
// (§3.4). Multi-start Nelder–Mead over (a, b, c) on the Eq. (2) objective.
//
// This is the non-private estimator the paper's "KronMom" columns/series
// refer to, and the optimization core that Algorithm 1 reuses with
// privatized features.

#ifndef DPKRON_ESTIMATION_KRONMOM_H_
#define DPKRON_ESTIMATION_KRONMOM_H_

#include <cstdint>

#include "src/estimation/features.h"
#include "src/estimation/nelder_mead.h"
#include "src/estimation/objective.h"
#include "src/graph/graph_view.h"
#include "src/skg/initiator.h"

namespace dpkron {

struct KronMomOptions {
  ObjectiveOptions objective;
  NelderMeadOptions solver;
  // Coarse-lattice resolution per axis for start-point selection.
  uint32_t grid_points = 7;
  // How many of the best lattice points seed a full Nelder–Mead run.
  uint32_t num_starts = 5;
};

struct KronMomResult {
  Initiator2 theta;        // canonical (a ≥ c)
  double objective = 0.0;  // Eq. (2) value at theta
  uint32_t k = 0;          // Kronecker order used
  bool converged = false;
};

// Smallest k with 2^k ≥ num_nodes — the model-selection rule the paper
// uses (N is padded up to the next power of two).
uint32_t ChooseKroneckerOrder(uint64_t num_nodes);

// Fits Θ to pre-computed observed features at Kronecker order k.
KronMomResult FitKronMomToFeatures(const GraphFeatures& observed, uint32_t k,
                                   const KronMomOptions& options = {});

// Convenience: extracts exact features from `graph`, chooses k, fits.
KronMomResult FitKronMom(GraphView graph,
                         const KronMomOptions& options = {});

}  // namespace dpkron

#endif  // DPKRON_ESTIMATION_KRONMOM_H_
