#include "src/graph/graph_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>
#include "src/graph/degree.h"
#include "tests/test_util.h"

namespace dpkron {
namespace {

TEST(GraphIoTest, ParsesSimpleEdgeList) {
  const auto result = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumNodes(), 3u);
  EXPECT_EQ(result.value().NumEdges(), 3u);
}

TEST(GraphIoTest, SkipsCommentsAndBlankLines) {
  const auto result = ParseEdgeList(
      "# SNAP header\n# Nodes: 3 Edges: 2\n\n0\t1\n\n  # inline\n1\t2\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 2u);
}

TEST(GraphIoTest, DensifiesSparseIds) {
  const auto result = ParseEdgeList("1000 2000\n2000 500\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumNodes(), 3u);
  EXPECT_EQ(result.value().NumEdges(), 2u);
}

TEST(GraphIoTest, DeduplicatesAndDropsLoops) {
  const auto result = ParseEdgeList("0 1\n1 0\n5 5\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 1u);
  EXPECT_EQ(result.value().NumNodes(), 3u);  // nodes 0, 1, 5 all interned
}

TEST(GraphIoTest, RejectsMalformedLine) {
  const auto result = ParseEdgeList("0 1\nnot numbers\n");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find(":2"), std::string::npos);
}

TEST(GraphIoTest, EmptyInputGivesEmptyGraph) {
  const auto result = ParseEdgeList("# only comments\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumNodes(), 0u);
}

TEST(GraphIoTest, ReadMissingFileFails) {
  const auto result = ReadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(GraphIoTest, WriteReadRoundTrip) {
  const Graph g = testing::PetersenGraph();
  const std::string path = ::testing::TempDir() + "/petersen.txt";
  ASSERT_TRUE(WriteEdgeList(g, path).ok());
  const auto back = ReadEdgeList(path);
  ASSERT_TRUE(back.ok());
  // The reader renumbers by first appearance, so compare isomorphism-
  // safe invariants rather than literal edge lists.
  EXPECT_EQ(back.value().NumNodes(), g.NumNodes());
  EXPECT_EQ(back.value().NumEdges(), g.NumEdges());
  EXPECT_EQ(SortedDegreeVector(back.value()), SortedDegreeVector(g));
  std::remove(path.c_str());
}

TEST(GraphIoTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(WriteEdgeList(Graph(), "/nonexistent/dir/out.txt").ok());
}

}  // namespace
}  // namespace dpkron
