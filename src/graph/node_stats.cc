#include "src/graph/node_stats.h"

#include "src/graph/triangles.h"

namespace dpkron {

NodeStats ComputeNodeStats(GraphView graph) {
  graph.CountPass("node_stats");
  NodeStats stats;
  // One sweep of the view's adjacency builds the forward orientation
  // AND the degree vector; the triangle intersections then run over the
  // compact in-RAM forward CSR, never re-reading the backing store.
  const internal::ForwardCsr fwd =
      internal::BuildForwardCsrFused(graph, &stats.degrees);
  stats.triangles =
      internal::PerNodeTrianglesFromForward(fwd, graph.NumNodes());
  return stats;
}

}  // namespace dpkron
